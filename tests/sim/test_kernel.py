"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import (AllOf, AnyOf, Interrupt, SimulationError,
                              Simulator)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.5)
        return "done"

    process = sim.process(proc())
    sim.run()
    assert sim.now == 2.5
    assert process.value == "done"


def test_timeout_carries_value():
    sim = Simulator()

    def proc():
        value = yield sim.timeout(1.0, value=42)
        return value

    process = sim.process(proc())
    sim.run()
    assert process.value == 42


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(waiter(3.0, "c"))
    sim.process(waiter(1.0, "a"))
    sim.process(waiter(2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def waiter(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        sim.process(waiter(tag))
    sim.run()
    assert order == ["first", "second", "third"]


def test_run_until_limits_clock():
    sim = Simulator()

    def ticker():
        while True:
            yield sim.timeout(1.0)

    sim.process(ticker())
    sim.run(until=5.5)
    assert sim.now == 5.5


def test_run_backwards_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_manual_event_succeed():
    sim = Simulator()
    gate = sim.event()
    results = []

    def waiter():
        value = yield gate
        results.append(value)

    def opener():
        yield sim.timeout(1.0)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert results == ["open"]


def test_event_failure_propagates_into_process():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            return "caught %s" % exc

    process = sim.process(waiter())
    gate.fail(ValueError("boom"))
    sim.run()
    assert process.value == "caught boom"


def test_unhandled_process_failure_raises_from_run():
    sim = Simulator()

    def broken():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(broken())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_yield_already_triggered_event():
    sim = Simulator()
    event = sim.event()
    event.succeed("early")

    def proc():
        value = yield event
        return value

    process = sim.process(proc())
    sim.run()
    assert process.value == "early"


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    process = sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()
    assert process.triggered
    assert not process.ok


def test_process_return_value_chains():
    sim = Simulator()

    def inner():
        yield sim.timeout(1.0)
        return 7

    def outer():
        value = yield sim.process(inner())
        return value * 2

    process = sim.process(outer())
    sim.run()
    assert process.value == 14


def test_interrupt_delivers_cause():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, sim.now)

    process = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(1.0)
        process.interrupt("wake up")

    sim.process(interrupter())
    sim.run()
    assert process.value == ("interrupted", "wake up", 1.0)


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.1)

    process = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_kill_releases_waiters():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)
        return "never"

    victim = sim.process(sleeper())

    def killer():
        yield sim.timeout(1.0)
        victim.kill()

    def waiter():
        value = yield victim
        return ("victim finished", value, sim.now)

    watcher = sim.process(waiter())
    sim.process(killer())
    sim.run()
    # The watcher is released at kill time; the victim's abandoned
    # timer is reaped (nobody else watches it), so the run ends at
    # the kill, not at the timer's t=100 deadline.
    assert watcher.value == ("victim finished", None, 1.0)
    assert not victim.alive
    assert sim.now == 1.0


def test_anyof_fires_on_first():
    sim = Simulator()

    def racer():
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(5.0, value="slow")
        results = yield AnyOf(sim, [fast, slow])
        return results

    process = sim.process(racer())
    sim.run()
    assert list(process.value.values()) == ["fast"]
    assert sim.now == 5.0  # the slow timer still fires


def test_allof_waits_for_all():
    sim = Simulator()

    def gather():
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")
        results = yield AllOf(sim, [a, b])
        return sorted(results.values())

    process = sim.process(gather())
    sim.run()
    assert process.value == ["a", "b"]


def test_anyof_empty_fires_immediately():
    sim = Simulator()

    def proc():
        results = yield AnyOf(sim, [])
        return results

    process = sim.process(proc())
    sim.run()
    assert process.value == {}


def test_store_fifo_ordering():
    sim = Simulator()
    store = sim.store()
    received = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    def producer():
        yield sim.timeout(1.0)
        store.put("x")
        store.put("y")
        yield sim.timeout(1.0)
        store.put("z")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert received == ["x", "y", "z"]


def test_store_getters_served_in_order():
    sim = Simulator()
    store = sim.store()
    received = []

    def consumer(tag):
        item = yield store.get()
        received.append((tag, item))

    sim.process(consumer("first"))
    sim.process(consumer("second"))
    store.put(1)
    store.put(2)
    sim.run()
    assert received == [("first", 1), ("second", 2)]


def test_resource_limits_concurrency():
    sim = Simulator()
    resource = sim.resource(capacity=2)
    active = []
    peak = []

    def worker(tag):
        yield resource.acquire()
        active.append(tag)
        peak.append(len(active))
        yield sim.timeout(1.0)
        active.remove(tag)
        resource.release()

    for tag in range(5):
        sim.process(worker(tag))
    sim.run()
    assert max(peak) == 2
    assert sim.now == pytest.approx(3.0)


def test_resource_release_without_acquire_rejected():
    sim = Simulator()
    resource = sim.resource()
    with pytest.raises(SimulationError):
        resource.release()


def test_run_until_complete_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return "finished"

    process = sim.process(proc())
    assert sim.run_until_complete(process) == "finished"


def test_run_until_complete_detects_deadlock():
    sim = Simulator()
    never = sim.event()

    def proc():
        yield never

    process = sim.process(proc())
    with pytest.raises(SimulationError, match="did not complete"):
        sim.run_until_complete(process)


def test_cancelled_timeout_never_fires():
    sim = Simulator()
    fired = []

    def proc():
        guard = sim.timeout(5.0)
        guard.add_callback(lambda _e: fired.append("guard"))
        yield sim.timeout(1.0)
        assert guard.cancel() is True
        assert guard.cancelled
        yield sim.timeout(10.0)

    sim.process(proc())
    sim.run()
    assert fired == []
    assert sim.now == 11.0  # the cancelled 5.0 timer did not fire at 5.0


def test_cancel_is_idempotent_and_noop_after_fire():
    sim = Simulator()

    def proc():
        timer = sim.timeout(1.0)
        yield timer
        # Already fired: cancel must be a harmless no-op.
        assert timer.cancel() is False
        assert not timer.cancelled
        early = sim.timeout(50.0)
        assert early.cancel() is True
        assert early.cancel() is False

    sim.process(proc())
    sim.run()


def test_cancellation_compacts_heap():
    sim = Simulator()
    timers = [sim.timeout(100.0 + i) for i in range(1000)]
    assert sim.heap_size == 1000
    for timer in timers:
        timer.cancel()
    # Lazy invalidation plus compaction: no live entries remain and
    # the garbage does not accumulate past the live count.
    assert sim.heap_size == 0
    assert sim.stale_timer_count <= 1
    assert sim.peek() == float("inf")
    sim.run()
    assert sim.now == 0.0  # nothing left to grind through
    assert sim.events_processed == 0


def test_peek_and_run_skip_cancelled_head():
    sim = Simulator()
    first = sim.timeout(1.0)
    sim.timeout(2.0)
    first.cancel()
    assert sim.peek() == 2.0
    sim.run()
    assert sim.now == 2.0


def test_run_until_complete_with_cancelled_timers():
    sim = Simulator()

    def proc():
        guard = sim.timeout(1000.0)
        yield sim.timeout(1.0)
        guard.cancel()
        return "done"

    process = sim.process(proc())
    assert sim.run_until_complete(process, limit=10.0) == "done"
    assert sim.stale_timer_count == 0


def test_defused_failure_stays_defused_through_anyof():
    # An orphaned AnyOf (its waiting process was killed) must not crash
    # the simulation when a pre-defused teardown failure reaches it.
    sim = Simulator()
    gate = sim.event()

    def sleeper():
        yield AnyOf(sim, [gate, sim.timeout(100.0)])

    victim = sim.process(sleeper())

    def killer():
        yield sim.timeout(1.0)
        victim.kill()
        gate.defuse()
        gate.fail(RuntimeError("teardown"))

    sim.process(killer())
    sim.run()  # must not raise RuntimeError("teardown")
    assert sim.now == 100.0


def test_same_instant_timer_and_triggered_events_interleave_by_seq():
    """Timers and zero-delay events at one timestamp fire in
    scheduling order — the (time, seq) contract across the run queue
    and the timer heap."""
    sim = Simulator()
    order = []

    def note(tag):
        return lambda _event: order.append(tag)

    def driver():
        yield sim.timeout(1.0)
        # All of these fire at t=1.0; their relative order must be
        # exactly creation order, however they were scheduled.
        sim.timeout(0.0).add_callback(note("timer-a"))         # heap
        sim.event().succeed().add_callback(note("event-a"))    # run queue
        sim.timeout_at(sim.now).add_callback(note("timer-b"))  # heap, tie
        sim.event().succeed().add_callback(note("event-b"))    # run queue
        sim.timeout(0.0).add_callback(note("timer-c"))         # heap

    sim.process(driver())
    sim.run()
    assert order == ["timer-a", "event-a", "timer-b", "event-b", "timer-c"]


def test_same_instant_strict_scheduling_order():
    """The canonical interleaving: alternating zero-delay triggers and
    t=now timers fire strictly in the order they were scheduled."""
    sim = Simulator()
    order = []

    def fire(tag):
        return lambda _event: order.append(tag)

    def driver():
        yield sim.timeout(2.0)
        for index in range(6):
            if index % 2:
                sim.timeout(0.0).add_callback(fire("t%d" % index))
            else:
                sim.event().succeed().add_callback(fire("e%d" % index))

    sim.process(driver())
    sim.run()
    assert order == ["e0", "t1", "e2", "t3", "e4", "t5"]
    assert sim.now == 2.0


def test_zero_delay_cascade_bypasses_heap():
    """A deep succeed() chain never touches the timer heap."""
    sim = Simulator()
    chain = {"count": 0}

    def relay(event):
        if chain["count"] < 1000:
            chain["count"] += 1
            nxt = sim.event()
            nxt.add_callback(relay)
            nxt.succeed()

    first = sim.event()
    first.add_callback(relay)
    first.succeed()
    sim.run()
    assert chain["count"] == 1000
    assert sim.peak_heap_size == 0          # no timer ever armed
    assert sim.peak_ready_size >= 1
    assert sim.events_processed == 1001
    assert sim.now == 0.0                   # the cascade took no time


def test_peek_sees_run_queue_before_heap():
    sim = Simulator()
    sim.run(until=3.0)
    sim.timeout(5.0)
    assert sim.peek() == 8.0
    sim.event().succeed()
    assert sim.peek() == 3.0                # a ready event fires *now*
    assert sim.ready_size == 1
    sim.run(until=3.0)                      # processes the ready event
    assert sim.ready_size == 0
    assert sim.peek() == 8.0


def test_step_merges_run_queue_and_tied_timer():
    sim = Simulator()
    order = []
    timer = sim.timeout(0.0)                # seq 0, t=0 (heap)
    timer.add_callback(lambda _e: order.append("timer"))
    event = sim.event().succeed()           # seq 1, t=0 (run queue)
    event.add_callback(lambda _e: order.append("event"))
    sim.step()
    assert order == ["timer"]               # lower seq wins the tie
    sim.step()
    assert order == ["timer", "event"]


def test_run_until_limit_with_pending_ready_events():
    """run_until_complete still detects a time-limit breach when only
    run-queue events remain (parity with the single-heap scheduler,
    where zero-delay events lived in the heap and tripped the same
    check)."""
    sim = Simulator()
    sim.run(until=5.0)

    def proc():
        yield sim.event()                   # never triggered

    process = sim.process(proc())           # start event fires at t=5
    with pytest.raises(SimulationError, match="did not complete"):
        sim.run_until_complete(process, limit=2.0)


def test_determinism_two_runs_identical():
    def build():
        sim = Simulator()
        log = []

        def noisy(tag, delay):
            yield sim.timeout(delay)
            log.append((tag, sim.now))

        for i in range(10):
            sim.process(noisy(i, (i * 7) % 5 + 0.5))
        sim.run()
        return log

    assert build() == build()


def test_timeout_at_with_reserved_seq_fires_at_reserved_position():
    """A timer armed late with a reserved sequence number fires as if
    it had been armed when the number was drawn — the contract the
    deadline pools (repro.sim.deadlines) are built on."""
    sim = Simulator()
    order = []

    def note(label):
        return lambda _e: order.append(label)

    reserved = sim.reserve_seq()
    sim.timeout_at(1.0).add_callback(note("armed-first"))
    # Armed *after* the plain timer, but at the reserved (earlier)
    # position: it must fire first at the shared instant.
    sim.timeout_at(1.0, seq=reserved).add_callback(note("reserved"))
    sim.run()
    assert order == ["reserved", "armed-first"]
    assert sim.now == 1.0


def test_reserved_seq_merges_with_run_queue_ties():
    """A reserved-seq timer tying the current instant outranks run-queue
    events enqueued after the reservation, exactly as a timer armed at
    reservation time would have."""
    sim = Simulator()
    order = []

    def driver():
        yield sim.timeout(1.0)
        reserved = sim.reserve_seq()
        ev = sim.event()
        ev.add_callback(lambda _e: order.append("triggered"))
        ev.succeed()  # run queue, seq drawn after the reservation
        sim.timeout_at(sim.now, seq=reserved).add_callback(
            lambda _e: order.append("reserved-tie"))
        yield sim.timeout(1.0)

    sim.run_until_complete(sim.process(driver()))
    assert order == ["reserved-tie", "triggered"]
