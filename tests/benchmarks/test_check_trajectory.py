"""Tests for the CI perf-trajectory gate (benchmarks/check_trajectory.py).

The gate script lives outside the package (benchmarks/ is not
importable), so it is loaded by file path here.
"""

import importlib.util
import json
import pathlib
import time

import pytest

from repro.sim.rpc import UdpRpcClient, UdpRpcServer
from repro.sim.topology import Topology
from repro.sim.world import World

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_trajectory", REPO_ROOT / "benchmarks" / "check_trajectory.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_compare_records_flags_regressions(gate):
    baseline = {"requests_per_sec": 1000.0, "events_per_sec": 5000.0,
                "peak_heap_size": 3}
    ok_fresh = {"requests_per_sec": 800.0, "events_per_sec": 5500.0,
                "peak_heap_size": 900}  # size metrics are not gated
    rows, regressions = gate.compare_records("kernel_x", baseline, ok_fresh,
                                             threshold=0.30)
    assert len(rows) == 2 and regressions == []

    bad_fresh = {"requests_per_sec": 600.0, "events_per_sec": 5000.0}
    _rows, regressions = gate.compare_records("kernel_x", baseline,
                                              bad_fresh, threshold=0.30)
    assert [r["metric"] for r in regressions] == ["requests_per_sec"]
    assert regressions[0]["change"] == pytest.approx(-0.4)


def test_gate_passes_and_fails_end_to_end(gate, tmp_path, monkeypatch):
    monkeypatch.delenv("TRAJECTORY_SKIP", raising=False)
    baseline_dir = tmp_path / "baseline"
    fresh_dir = tmp_path / "fresh"
    baseline_dir.mkdir()
    fresh_dir.mkdir()
    (baseline_dir / "kernel_x.json").write_text(
        json.dumps({"requests_per_sec": 1000.0}))
    (fresh_dir / "kernel_x.json").write_text(
        json.dumps({"requests_per_sec": 750.0}))
    (fresh_dir / "kernel_new.json").write_text(
        json.dumps({"requests_per_sec": 10.0}))  # no baseline: warn only

    args = ["--fresh", str(fresh_dir), "--baseline", str(baseline_dir)]
    assert gate.main(args) == 0  # -25% is inside the 30% budget
    assert gate.main(args + ["--threshold", "0.2"]) == 1

    monkeypatch.setenv("TRAJECTORY_SKIP", "1")
    assert gate.main(args + ["--threshold", "0.2"]) == 0
    monkeypatch.delenv("TRAJECTORY_SKIP")

    assert gate.main(["--fresh", str(tmp_path / "missing")]) == 2


def _echo_record(calls, handler):
    """One mini UDP-RPC echo run; returns the bench-style record."""
    world = World(topology=Topology.balanced(1, 1, 1, 2), seed=9)
    a = world.host("client", "r0/c0/m0/s0")
    b = world.host("node", "r0/c0/m0/s1")
    server = UdpRpcServer(b, 5300)
    server.register("echo", handler)
    server.start()
    client = UdpRpcClient(a)

    def caller():
        for index in range(calls):
            yield from client.call(b, 5300, "echo", {"x": index})

    proc = a.spawn(caller())
    started = time.perf_counter()
    world.run_until(proc, limit=1e9)
    wall = time.perf_counter() - started
    return {"requests_per_sec": calls / wall,
            "events_per_sec": world.sim.events_processed / wall}


def test_gate_fails_on_artificially_slowed_kernel(gate, tmp_path,
                                                  monkeypatch):
    """The acceptance demonstration: a kernel made slower (every echo
    burns wall-clock time in the handler) must trip the gate against a
    baseline recorded from the healthy kernel."""
    monkeypatch.delenv("TRAJECTORY_SKIP", raising=False)
    calls = 150
    healthy = _echo_record(calls, lambda ctx, args: args["x"])

    def slowed_handler(ctx, args):
        time.sleep(0.002)  # pretend the hot path got 100x costlier
        return args["x"]

    slowed = _echo_record(calls, slowed_handler)
    assert slowed["requests_per_sec"] < healthy["requests_per_sec"] * 0.5

    baseline_dir = tmp_path / "baseline"
    fresh_dir = tmp_path / "fresh"
    baseline_dir.mkdir()
    fresh_dir.mkdir()
    (baseline_dir / "kernel_udp_rpc_echo.json").write_text(
        json.dumps(healthy))
    (fresh_dir / "kernel_udp_rpc_echo.json").write_text(json.dumps(slowed))

    assert gate.main(["--fresh", str(fresh_dir),
                      "--baseline", str(baseline_dir)]) == 1
    # And the healthy kernel passes against its own baseline.
    (fresh_dir / "kernel_udp_rpc_echo.json").write_text(json.dumps(healthy))
    assert gate.main(["--fresh", str(fresh_dir),
                      "--baseline", str(baseline_dir)]) == 0
