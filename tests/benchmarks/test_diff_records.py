"""Tests for the cross-PR bench-record diff (benchmarks/diff_records.py).

Like the trajectory gate, the script lives outside the package, so it
is loaded by file path (with benchmarks/ on sys.path for its
check_trajectory import).
"""

import importlib.util
import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"


@pytest.fixture(scope="module")
def differ():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        spec = importlib.util.spec_from_file_location(
            "diff_records", BENCH_DIR / "diff_records.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.path.remove(str(BENCH_DIR))


def _write(directory, name, record):
    directory.mkdir(exist_ok=True)
    (directory / ("%s.json" % name)).write_text(json.dumps(record))


def test_diff_covers_changed_new_and_dropped(differ, tmp_path):
    old = tmp_path / "old"
    new = tmp_path / "new"
    _write(old, "kernel_echo", {"requests_per_sec": 1000.0,
                                "events_per_sec": 5000.0})
    _write(old, "kernel_gone", {"events_per_sec": 10.0})
    _write(new, "kernel_echo", {"requests_per_sec": 1300.0,
                                "events_per_sec": 4000.0,
                                "peak_heap_size": 5})  # sizes not diffed
    _write(new, "gdn_request_path", {"requests_per_sec": 90.0})

    rows = differ.diff_directories(old, new)
    by_key = {(r["name"], r["metric"]): r for r in rows}
    assert by_key[("kernel_echo", "requests_per_sec")]["new"] == 1300.0
    assert by_key[("kernel_echo", "events_per_sec")]["old"] == 5000.0
    assert by_key[("gdn_request_path", "requests_per_sec")]["status"] \
        == "new benchmark"
    assert by_key[("gdn_request_path", "requests_per_sec")]["old"] is None
    assert by_key[("kernel_gone", "-")]["status"] == "dropped benchmark"
    assert ("kernel_echo", "peak_heap_size") not in by_key

    table = differ.format_table(rows, "abc123", "def456")
    assert "+30.0%" in table and "-20.0%" in table
    assert "new benchmark" in table and "dropped benchmark" in table


def test_diff_main_is_informational_only(differ, tmp_path, capsys):
    old = tmp_path / "old"
    new = tmp_path / "new"
    # A catastrophic regression still exits 0: this is context, not a
    # gate (runner classes differ between CI runs).
    _write(old, "kernel_echo", {"requests_per_sec": 1000.0})
    _write(new, "kernel_echo", {"requests_per_sec": 10.0})
    assert differ.main(["--old", str(old), "--new", str(new)]) == 0
    out = capsys.readouterr().out
    assert "-99.0%" in out
    # Unusable directories are a usage error.
    assert differ.main(["--old", str(tmp_path / "nope"),
                        "--new", str(new)]) == 2


def test_diff_includes_timer_churn_ratio(differ, tmp_path):
    old = tmp_path / "old"
    new = tmp_path / "new"
    _write(old, "kernel_echo", {"requests_per_sec": 1000.0,
                                "timers_per_request": 3.0})
    _write(new, "kernel_echo", {"requests_per_sec": 1200.0,
                                "timers_per_request": 2.01})

    rows = differ.diff_directories(old, new)
    by_key = {(r["name"], r["metric"]): r for r in rows}
    ratio = by_key[("kernel_echo", "timers_per_request")]
    assert ratio["old"] == 3.0 and ratio["new"] == 2.01

    table = differ.format_table(rows, "prev", "this")
    # Ratios print with decimals and are flagged as lower-is-better,
    # right next to the rate diff.
    assert "2.010" in table
    assert "-33.0%" in table
    assert "(lower is better)" in table
