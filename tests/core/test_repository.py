"""Unit tests for the implementation repository."""

import pytest

from repro.core.repository import (Implementation, ImplementationRepository,
                                   RepositoryError)
from repro.sim.topology import Level, Topology
from repro.sim.world import World
from tests.util import KvStore


@pytest.fixture
def world():
    return World(topology=Topology.balanced(2, 2, 2, 2), seed=11)


@pytest.fixture
def repo(world):
    repository = ImplementationRepository(world)
    repository.register(Implementation("test.kv", KvStore, code_size=40_000))
    return repository


def test_unknown_implementation_rejected(repo, world):
    host = world.host("h", "r0/c0/m0/s0")
    with pytest.raises(RepositoryError):
        repo.implementation("nope")

    def load():
        yield from repo.load(host, "nope")

    process = world.sim.process(load())
    with pytest.raises(RepositoryError):
        world.run()
        process.value


def test_load_without_repo_hosts_is_free(repo, world):
    host = world.host("h", "r0/c0/m0/s0")

    def load():
        start = world.now
        implementation = yield from repo.load(host, "test.kv")
        return implementation.impl_id, world.now - start

    impl_id, duration = world.run_until(world.sim.process(load()))
    assert impl_id == "test.kv"
    assert duration == 0.0


def test_load_charges_transfer_from_nearest_repo(repo, world):
    near = world.host("repo-near", "r0/c0/m0/s1")
    far = world.host("repo-far", "r1/c0/m0/s0")
    repo.add_repository_host(far)
    repo.add_repository_host(near)
    host = world.host("h", "r0/c0/m0/s0")

    def load():
        start = world.now
        yield from repo.load(host, "test.kv")
        return world.now - start

    duration = world.run_until(world.sim.process(load()))
    # Fetched from the near (city-level) repo, not the far one.
    city_delay = world.network.transfer_delay(
        host.site, near.site, 40_000)
    assert duration < 2 * city_delay + 0.01
    assert world.network.meter.bytes_by_level[Level.CITY] >= 40_000
    assert world.network.meter.bytes_by_level[Level.WORLD] == 0


def test_second_load_is_cached(repo, world):
    near = world.host("repo-near", "r0/c0/m0/s1")
    repo.add_repository_host(near)
    host = world.host("h", "r0/c0/m0/s0")

    def load_twice():
        yield from repo.load(host, "test.kv")
        t_after_first = world.now
        yield from repo.load(host, "test.kv")
        return t_after_first, world.now

    first, second = world.run_until(world.sim.process(load_twice()))
    assert second == first  # cache hit costs nothing
    assert repo.downloads == 1


def test_preload_skips_download(repo, world):
    near = world.host("repo-near", "r0/c0/m0/s1")
    repo.add_repository_host(near)
    host = world.host("h", "r0/c0/m0/s0")
    repo.preload(host, "test.kv")

    def load():
        yield from repo.load(host, "test.kv")
        return world.now

    assert world.run_until(world.sim.process(load())) == 0.0
    assert repo.downloads == 0


def test_down_repo_host_skipped(repo, world):
    near = world.host("repo-near", "r0/c0/m0/s1")
    far = world.host("repo-far", "r1/c0/m0/s0")
    repo.add_repository_host(near)
    repo.add_repository_host(far)
    near.crash()
    host = world.host("h", "r0/c0/m0/s0")

    def load():
        yield from repo.load(host, "test.kv")

    world.run_until(world.sim.process(load()))
    assert world.network.meter.bytes_by_level[Level.WORLD] >= 40_000


def test_make_semantics_fresh_instances(repo):
    implementation = repo.implementation("test.kv")
    a = implementation.make_semantics()
    b = implementation.make_semantics()
    a.put("k", "v")
    assert b.get("k") is None
