"""Unit and property tests for the opaque invocation codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.marshal import (MarshalError, marshal_invocation,
                                marshal_result, pack, unmarshal_invocation,
                                unmarshal_result, unpack)


def test_scalar_round_trips():
    for value in (None, True, False, 0, -1, 2 ** 100, 3.25, "héllo", b"raw"):
        assert unpack(pack(value)) == value


def test_container_round_trips():
    value = {"files": [{"name": "a", "data": b"\x00" * 64}],
             "sizes": (1, 2, 3), "empty": [], "nested": {"k": None}}
    result = unpack(pack(value))
    assert result["files"] == value["files"]
    assert result["sizes"] == (1, 2, 3)


def test_canonical_dict_encoding():
    assert pack({"a": 1, "b": 2}) == pack({"b": 2, "a": 1})


def test_non_string_dict_keys_rejected():
    with pytest.raises(MarshalError):
        pack({1: "x"})


def test_unknown_type_rejected():
    with pytest.raises(MarshalError):
        pack(object())


def test_truncated_message_rejected():
    data = pack("hello world")
    with pytest.raises(MarshalError):
        unpack(data[:-3])


def test_trailing_garbage_rejected():
    with pytest.raises(MarshalError):
        unpack(pack(1) + b"x")


def test_invocation_round_trip():
    payload = marshal_invocation("getFileContents",
                                 {"path": "bin/gimp", "offset": 0})
    method, args = unmarshal_invocation(payload)
    assert method == "getFileContents"
    assert args == {"path": "bin/gimp", "offset": 0}


def test_result_round_trip():
    assert unmarshal_result(marshal_result([1, "two", b"3"])) == [1, "two",
                                                                  b"3"]


def test_result_is_not_an_invocation():
    with pytest.raises(MarshalError):
        unmarshal_invocation(marshal_result("x"))


_values = st.recursive(
    st.none() | st.booleans() | st.integers() |
    st.floats(allow_nan=False, allow_infinity=False) |
    st.text(max_size=40) | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20)


@given(_values)
def test_pack_unpack_property(value):
    assert unpack(pack(value)) == value


@given(_values)
def test_packed_size_grows_with_content(value):
    # Size sanity: encoding is never absurdly smaller than the content.
    data = pack(value)
    assert len(data) >= 1
