"""Integration tests: replication protocols end-to-end through GOSs.

These exercise the full subobject stack of Figure 1(b): a client-side
local representative marshals invocations into opaque messages, its
replication subobject routes them, communication subobjects carry them
to Globe Object Servers, and replica-side representatives execute them
against semantics subobjects.
"""

import pytest

from repro.core.ids import ObjectId
from tests.util import GlobeBed


@pytest.fixture
def bed():
    return GlobeBed()


def _create_object(bed, gos, protocol, role="master", impl="test.kv"):
    def create():
        lr = yield from gos.create_local_replica(None, impl, protocol, role)
        return lr

    return bed.run(create())


def _add_replica(bed, gos, oid, master_ca, protocol, role, impl="test.kv"):
    def create():
        lr = yield from gos.create_local_replica(
            oid, impl, protocol, role, master=master_ca)
        return lr

    return bed.run(create())


# -- client/server -----------------------------------------------------------


def test_client_server_end_to_end(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")
    server_lr = _create_object(bed, gos, "client_server", role="server")
    runtime = bed.runtime("client-1", "r1/c0/m0/s0")

    def use():
        lr = yield from runtime.bind(server_lr.oid)
        yield from lr.invoke("put", {"key": "gimp", "value": "1.2"})
        value = yield from lr.invoke("get", {"key": "gimp"})
        size = yield from lr.invoke("size")
        return value, size, lr.role

    value, size, role = bed.run(use(), host=runtime.host)
    assert value == "1.2"
    assert size == 1
    assert role == "client"
    # All state lives on the server; the client proxy held none.
    assert server_lr.semantics.data == {"gimp": "1.2"}


def test_client_server_remote_fault_reraises(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")
    server_lr = _create_object(bed, gos, "client_server", role="server")
    runtime = bed.runtime("client-1", "r0/c0/m0/s1")

    def use():
        lr = yield from runtime.bind(server_lr.oid)
        try:
            yield from lr.invoke("put", {"key": "k"})  # missing 'value'
        except Exception as exc:  # noqa: BLE001
            return type(exc).__name__

    assert bed.run(use(), host=runtime.host) == "RemoteInvocationError"


def test_undeclared_method_rejected_client_side(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")
    server_lr = _create_object(bed, gos, "client_server", role="server")
    runtime = bed.runtime("client-1", "r0/c0/m0/s1")

    def use():
        lr = yield from runtime.bind(server_lr.oid)
        try:
            yield from lr.invoke("not_a_method")
        except Exception as exc:  # noqa: BLE001
            return type(exc).__name__

    assert bed.run(use(), host=runtime.host) == "IdlError"


# -- master/slave -----------------------------------------------------------


def _master_slave_pair(bed):
    master_gos = bed.gos("gos-master", "r0/c0/m0/s0")
    slave_gos = bed.gos("gos-slave", "r1/c0/m0/s0")
    master_lr = _create_object(bed, master_gos, "master_slave", role="master")
    slave_lr = _add_replica(bed, slave_gos, master_lr.oid,
                            master_lr.contact_address, "master_slave",
                            "slave")
    return master_gos, slave_gos, master_lr, slave_lr


def test_slave_join_transfers_state(bed):
    master_gos = bed.gos("gos-master", "r0/c0/m0/s0")
    master_lr = _create_object(bed, master_gos, "master_slave", role="master")
    master_lr.semantics.data["preexisting"] = "yes"
    slave_gos = bed.gos("gos-slave", "r1/c0/m0/s0")
    slave_lr = _add_replica(bed, slave_gos, master_lr.oid,
                            master_lr.contact_address, "master_slave",
                            "slave")
    assert slave_lr.semantics.data == {"preexisting": "yes"}
    assert master_lr.replication.slaves  # the slave joined


def test_write_at_master_propagates_to_slave(bed):
    _mg, _sg, master_lr, slave_lr = _master_slave_pair(bed)
    runtime = bed.runtime("client-1", "r0/c0/m0/s1")

    def write():
        lr = yield from runtime.bind(master_lr.oid)
        yield from lr.invoke("put", {"key": "tetex", "value": "3.0"})

    bed.run(write(), host=runtime.host)
    bed.world.run(until=bed.world.now + 10)  # let the async push land
    assert slave_lr.semantics.data == {"tetex": "3.0"}
    assert slave_lr.replication.version == 1


def test_client_near_slave_reads_locally_writes_to_master(bed):
    _mg, _sg, master_lr, slave_lr = _master_slave_pair(bed)
    # Client in the slave's region: GLS (fake, sorted) binds it there.
    bed.gls.sort_site = bed.world.topology.site("r1/c0/m0/s1")
    runtime = bed.runtime("client-1", "r1/c0/m0/s1")

    def use():
        lr = yield from runtime.bind(master_lr.oid)
        yield from lr.invoke("put", {"key": "k", "value": "v"})
        value = yield from lr.invoke("get", {"key": "k"})
        return lr.replication.bound.role, value

    bound_role, value = bed.run(use(), host=runtime.host)
    assert bound_role == "slave"
    # The write went to the master (the authoritative copy)...
    assert master_lr.semantics.data == {"k": "v"}
    # ...and the read was served by the bound replica.  Depending on
    # push timing the slave may or may not have caught up yet — both
    # outcomes are legal for asynchronous master/slave.
    assert value in ("v", None)
    assert master_lr.replication.writes_local == 1


def test_slave_forwards_writes_when_master_unknown(bed):
    _mg, _sg, master_lr, slave_lr = _master_slave_pair(bed)
    # Strip the master CA from the GLS answer: client only sees the slave.
    wires = bed.gls.records[master_lr.oid.hex]
    bed.gls.records[master_lr.oid.hex] = [
        w for w in wires if w["role"] == "slave"]
    runtime = bed.runtime("client-1", "r1/c0/m0/s1")

    def use():
        lr = yield from runtime.bind(master_lr.oid)
        yield from lr.invoke("put", {"key": "via-slave", "value": "1"})

    bed.run(use(), host=runtime.host)
    assert master_lr.semantics.data == {"via-slave": "1"}
    assert slave_lr.replication.writes_forwarded >= 1


def test_reads_fail_over_to_surviving_replica(bed):
    # The bound (nearest) replica dies mid-session; reads are
    # idempotent, so the client proxy re-pins to the next contact
    # address instead of surfacing a transport error.
    _mg, slave_gos, master_lr, slave_lr = _master_slave_pair(bed)
    bed.gls.sort_site = bed.world.topology.site("r1/c0/m0/s1")
    runtime = bed.runtime("client-1", "r1/c0/m0/s1")

    def seed():
        lr = yield from runtime.bind(master_lr.oid)
        yield from lr.invoke("put", {"key": "k", "value": "v"})
        return lr

    lr = bed.run(seed(), host=runtime.host)
    assert lr.replication.bound.role == "slave"
    bed.world.run(until=bed.world.now + 10)  # let the async push land
    slave_gos.host.crash()

    def read():
        value = yield from lr.invoke("get", {"key": "k"})
        return value, lr.replication.bound.role

    value, bound_role = bed.run(read(), host=runtime.host)
    assert value == "v"
    assert bound_role == "master"
    assert lr.replication.read_failovers == 1


def test_sync_push_makes_slaves_consistent_before_return(bed):
    master_gos = bed.gos("gos-master", "r0/c0/m0/s0")
    slave_gos = bed.gos("gos-slave", "r1/c0/m0/s0")

    def create_master():
        lr = yield from master_gos.create_local_replica(
            None, "test.kv", "master_slave", "master",
            protocol_options={"sync_push": True})
        return lr

    master_lr = bed.run(create_master())
    slave_lr = _add_replica(bed, slave_gos, master_lr.oid,
                            master_lr.contact_address, "master_slave",
                            "slave")
    runtime = bed.runtime("client-1", "r0/c0/m0/s1")

    def write():
        lr = yield from runtime.bind(master_lr.oid)
        yield from lr.invoke("put", {"key": "sync", "value": "now"})
        return dict(slave_lr.semantics.data)

    data_at_return = bed.run(write(), host=runtime.host)
    assert data_at_return == {"sync": "now"}


# -- active replication -------------------------------------------------------


def test_active_replication_applies_ops_everywhere(bed):
    bed.register_counter()
    seq_gos = bed.gos("gos-seq", "r0/c0/m0/s0")
    rep_gos = bed.gos("gos-rep", "r1/c0/m0/s0")
    seq_lr = _create_object(bed, seq_gos, "active", role="master",
                            impl="test.counter")
    rep_lr = _add_replica(bed, rep_gos, seq_lr.oid, seq_lr.contact_address,
                          "active", "replica", impl="test.counter")
    runtime = bed.runtime("client-1", "r0/c1/m0/s0")

    def use():
        lr = yield from runtime.bind(seq_lr.oid)
        for _ in range(5):
            yield from lr.invoke("increment", {"by": 2})
        value = yield from lr.invoke("value")
        return value

    assert bed.run(use(), host=runtime.host) == 10
    bed.world.run(until=bed.world.now + 10)
    assert rep_lr.semantics.count == 10
    assert rep_lr.replication.applied_seq == 5


def test_active_replica_serves_reads_locally(bed):
    bed.register_counter()
    seq_gos = bed.gos("gos-seq", "r0/c0/m0/s0")
    rep_gos = bed.gos("gos-rep", "r1/c0/m0/s0")
    seq_lr = _create_object(bed, seq_gos, "active", role="master",
                            impl="test.counter")
    rep_lr = _add_replica(bed, rep_gos, seq_lr.oid, seq_lr.contact_address,
                          "active", "replica", impl="test.counter")
    bed.gls.sort_site = bed.world.topology.site("r1/c0/m0/s1")
    runtime = bed.runtime("client-1", "r1/c0/m0/s1")

    def use():
        lr = yield from runtime.bind(seq_lr.oid)
        yield from lr.invoke("value")
        return lr.replication.bound.role

    assert bed.run(use(), host=runtime.host) == "replica"
    assert rep_lr.replication.reads_local >= 1


def test_active_holdback_applies_in_order(bed):
    """Out-of-order op delivery must not corrupt replica state."""
    from repro.core.marshal import marshal_invocation

    bed.register_counter()
    seq_gos = bed.gos("gos-seq", "r0/c0/m0/s0")
    rep_gos = bed.gos("gos-rep", "r0/c0/m0/s1")
    seq_lr = _create_object(bed, seq_gos, "active", role="master",
                            impl="test.counter")
    rep_lr = _add_replica(bed, rep_gos, seq_lr.oid, seq_lr.contact_address,
                          "active", "replica", impl="test.counter")
    repl = rep_lr.replication

    def deliver(seq, by):
        message = {"type": "op_push", "seq": seq,
                   "payload": marshal_invocation("increment", {"by": by})}
        return bed.run(repl.handle_message(message, None))

    deliver(3, 100)   # future op: held back
    assert rep_lr.semantics.count == 0
    deliver(1, 1)     # in order: applied immediately
    assert rep_lr.semantics.count == 1
    deliver(2, 10)    # fills the gap: 2 then 3 drain
    assert rep_lr.semantics.count == 111
    assert repl.applied_seq == 3
    deliver(2, 10)    # duplicate: ignored
    assert rep_lr.semantics.count == 111


# -- caching -----------------------------------------------------------------


def test_cache_serves_fresh_reads_locally(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")
    server_lr = _create_object(bed, gos, "client_server", role="server")
    server_lr.semantics.data["cached"] = "value"
    runtime = bed.runtime("client-1", "r1/c0/m0/s0")

    def use():
        lr = yield from runtime.bind(server_lr.oid, cache_ttl=60.0)
        first = yield from lr.invoke("get", {"key": "cached"})
        # Within the TTL these execute against the local copy.
        for _ in range(10):
            yield from lr.invoke("get", {"key": "cached"})
        return first, lr.replication.pulls, lr.replication.reads_local

    first, pulls, local_reads = bed.run(use(), host=runtime.host)
    assert first == "value"
    assert pulls == 1
    assert local_reads == 10


def test_cache_revalidates_after_ttl(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")
    server_lr = _create_object(bed, gos, "client_server", role="server")
    runtime = bed.runtime("client-1", "r1/c0/m0/s0")

    def use():
        lr = yield from runtime.bind(server_lr.oid, cache_ttl=5.0)
        yield from lr.invoke("size")
        yield bed.world.sim.timeout(10.0)  # TTL expires
        yield from lr.invoke("size")
        return lr.replication.pulls, lr.replication.revalidations

    pulls, revalidations = bed.run(use(), host=runtime.host)
    assert pulls == 2
    # Nothing changed server-side, so the second pull was answered
    # "fresh" without a state transfer.
    assert revalidations == 1


def test_cache_write_invalidates_and_next_read_sees_new_state(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")
    server_lr = _create_object(bed, gos, "client_server", role="server")
    runtime = bed.runtime("client-1", "r0/c1/m0/s0")

    def use():
        lr = yield from runtime.bind(server_lr.oid, cache_ttl=1000.0)
        yield from lr.invoke("size")  # warm the cache
        yield from lr.invoke("put", {"key": "new", "value": "x"})
        value = yield from lr.invoke("get", {"key": "new"})
        return value

    assert bed.run(use(), host=runtime.host) == "x"
    assert server_lr.semantics.data == {"new": "x"}


def test_cache_against_master_slave_pulls_from_nearest(bed):
    _mg, _sg, master_lr, slave_lr = _master_slave_pair(bed)
    bed.gls.sort_site = bed.world.topology.site("r1/c0/m0/s1")
    runtime = bed.runtime("client-1", "r1/c0/m0/s1")

    def use():
        lr = yield from runtime.bind(master_lr.oid, cache_ttl=60.0)
        yield from lr.invoke("size")
        return lr.replication.bound.role

    assert bed.run(use(), host=runtime.host) == "slave"
