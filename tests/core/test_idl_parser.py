"""Unit tests for the textual IDL parser and compliance checker."""

import pytest

from repro.core.idl import Mode
from repro.core.idl_parser import (IdlComplianceError, IdlSyntaxError,
                                   check_implements, parse_idl)
from repro.gdn.package import PackageSemantics
from tests.util import Counter, KvStore

PACKAGE_IDL = """
// The package DSO interface, as the paper's §4 describes it.
interface Package {
    readonly listContents();
    readonly getFileContents(path);
    readonly getFileDigest(path);
    mutating addFile(path, data);
    mutating delFile(path);
};

interface Versioned {
    readonly getVersion();
    readonly getHistory();
    mutating restoreFile(path, version);
};
"""


def test_parse_names_and_modes():
    interfaces = parse_idl(PACKAGE_IDL)
    assert set(interfaces) == {"Package", "Versioned"}
    package = interfaces["Package"]
    assert package.mode("listContents") == Mode.READ
    assert package.mode("addFile") == Mode.WRITE
    assert package.parameters["addFile"] == ["path", "data"]
    assert package.parameters["listContents"] == []


def test_comments_are_stripped():
    interfaces = parse_idl("""
    /* block comment
       interface Fake { readonly nope(); }; */
    interface Real {
        readonly value();   // line comment
    };
    """)
    assert set(interfaces) == {"Real"}


def test_syntax_errors():
    with pytest.raises(IdlSyntaxError):
        parse_idl("interface X { readonly broken: }")
    with pytest.raises(IdlSyntaxError):
        parse_idl("not idl at all")
    with pytest.raises(IdlSyntaxError):
        parse_idl("interface X { readonly a(); };"
                  "interface X { readonly b(); };")
    with pytest.raises(IdlSyntaxError):
        parse_idl("interface X { readonly a(); readonly a(); };")
    with pytest.raises(IdlSyntaxError):
        parse_idl("interface X { readonly a(bad name); };")
    with pytest.raises(IdlSyntaxError):
        parse_idl("interface X { readonly a(); }; trailing garbage")


def test_package_semantics_implements_its_idl():
    interfaces = parse_idl(PACKAGE_IDL)
    check_implements(PackageSemantics, interfaces["Package"])
    check_implements(PackageSemantics, interfaces["Versioned"])


def test_missing_method_detected():
    interfaces = parse_idl("interface I { readonly nothere(); };")
    with pytest.raises(IdlComplianceError, match="nothere"):
        check_implements(KvStore, interfaces["I"])


def test_mode_mismatch_detected():
    interfaces = parse_idl("interface I { mutating get(key); };")
    with pytest.raises(IdlComplianceError, match="read"):
        check_implements(KvStore, interfaces["I"])


def test_parameter_mismatch_detected():
    interfaces = parse_idl("interface I { mutating put(key, wrongname); };")
    with pytest.raises(IdlComplianceError, match="wrongname"):
        check_implements(KvStore, interfaces["I"])


def test_counter_implements_simple_idl():
    interfaces = parse_idl("""
    interface Counter {
        mutating increment(by);
        readonly value();
    };
    """)
    check_implements(Counter, interfaces["Counter"])


def test_non_semantics_class_rejected():
    interfaces = parse_idl("interface I { readonly x(); };")
    with pytest.raises(IdlComplianceError):
        check_implements(dict, interfaces["I"])
