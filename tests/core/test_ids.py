"""Unit tests for object identifiers and contact addresses."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ids import ContactAddress, IdError, ObjectId


def test_generate_is_deterministic_per_rng():
    a = ObjectId.generate(random.Random(1))
    b = ObjectId.generate(random.Random(1))
    c = ObjectId.generate(random.Random(2))
    assert a == b
    assert a != c


def test_hex_round_trip():
    oid = ObjectId.from_seed("gimp")
    assert ObjectId.from_hex(oid.hex) == oid
    assert len(oid.hex) == 40


def test_bad_hex_rejected():
    with pytest.raises(IdError):
        ObjectId.from_hex("zz")
    with pytest.raises(IdError):
        ObjectId(b"short")


def test_oid_hashable_and_distinct():
    oids = {ObjectId.from_seed("pkg-%d" % i) for i in range(100)}
    assert len(oids) == 100


def test_shard_stable_and_in_range():
    oid = ObjectId.from_seed("x")
    assert oid.shard(8) == oid.shard(8)
    assert 0 <= oid.shard(8) < 8
    with pytest.raises(IdError):
        oid.shard(0)


def test_shard_distributes_reasonably():
    buckets = [0] * 8
    for i in range(800):
        buckets[ObjectId.from_seed("obj-%d" % i).shard(8)] += 1
    # Every bucket gets a meaningful share (SHA-based hashing).
    assert min(buckets) > 50


@given(st.binary(min_size=20, max_size=20))
def test_oid_hex_round_trip_property(data):
    oid = ObjectId(data)
    assert ObjectId.from_hex(oid.hex) == oid


def test_contact_address_wire_round_trip():
    address = ContactAddress("gos-1", 7100, "master_slave", role="master",
                             impl_id="gdn.package", site_path="eu/nl/ams/vu")
    restored = ContactAddress.from_wire(address.to_wire())
    assert restored == address
    assert restored.key() == ("gos-1", 7100, "master")


def test_contact_address_default_impl_id():
    address = ContactAddress("h", 7100, "client_server")
    assert address.impl_id == "client_server/client"


def test_contact_address_missing_field_rejected():
    with pytest.raises(IdError):
        ContactAddress.from_wire({"host": "h"})
