"""Unit tests for control and communication subobjects."""

import pytest

from repro.core.idl import IdlError
from repro.core.marshal import marshal_invocation, unmarshal_result
from repro.core.subobjects import ControlSubobject
from tests.util import GlobeBed, KvStore


# -- control subobject (no network needed) -----------------------------------


def test_execute_runs_semantics_method():
    semantics = KvStore()
    control = ControlSubobject(semantics, KvStore.interface)
    raw = control.execute(marshal_invocation("put", {"key": "k",
                                                     "value": "v"}))
    assert unmarshal_result(raw) is None
    assert semantics.data == {"k": "v"}
    assert control.local_invocations == 1


def test_execute_encodes_faults_in_band():
    control = ControlSubobject(KvStore(), KvStore.interface)
    raw = control.execute(marshal_invocation("put", {"key": "k"}))
    result = unmarshal_result(raw)
    assert result["__fault__"]
    assert result["kind"] == "TypeError"


def test_execute_rejects_undeclared_methods():
    control = ControlSubobject(KvStore(), KvStore.interface)
    with pytest.raises(IdlError):
        control.execute(marshal_invocation("snapshot_state", {}))


def test_execute_without_semantics_rejected():
    control = ControlSubobject(None, KvStore.interface)
    with pytest.raises(IdlError):
        control.execute(marshal_invocation("get", {"key": "k"}))


def test_mode_of_inspects_opaque_payload():
    from repro.core.idl import Mode

    control = ControlSubobject(KvStore(), KvStore.interface)
    assert control.mode_of(marshal_invocation("get", {"key": "k"})) \
        == Mode.READ
    assert control.mode_of(
        marshal_invocation("put", {"key": "k", "value": "v"})) == Mode.WRITE


# -- communication subobject (channel management) ------------------------------


def test_comm_reuses_channels_per_endpoint():
    bed = GlobeBed()
    gos = bed.gos("gos-1", "r0/c0/m0/s0")

    def create():
        lr = yield from gos.create_local_replica(
            None, "test.kv", "client_server", "server")
        return lr

    server_lr = bed.run(create())
    runtime = bed.runtime("client-1", "r0/c0/m0/s1")

    def use():
        lr = yield from runtime.bind(server_lr.oid)
        for i in range(5):
            yield from lr.invoke("put", {"key": "k%d" % i, "value": "v"})
        comm = lr.comm
        return len(comm._channels), comm.messages_sent

    channels, messages = bed.run(use(), host=runtime.host)
    assert channels == 1  # one multiplexed channel, five invocations
    assert messages == 5


def test_comm_reconnects_after_peer_restart():
    bed = GlobeBed()
    gos = bed.gos("gos-1", "r0/c0/m0/s0")

    def create():
        lr = yield from gos.create_local_replica(
            None, "test.kv", "client_server", "server")
        return lr

    server_lr = bed.run(create())
    runtime = bed.runtime("client-1", "r0/c0/m0/s1")

    def phase_one():
        lr = yield from runtime.bind(server_lr.oid)
        yield from lr.invoke("put", {"key": "before", "value": "1"})
        return lr

    lr = bed.run(phase_one(), host=runtime.host)
    bed.run(gos._checkpoint_one(server_lr.oid.hex))  # persist the put
    gos.host.crash()
    gos.host.restart()
    bed.run(gos.recover())

    def phase_two():
        # Same bound representative: the comm subobject notices the
        # dead channel and reconnects transparently.
        value = yield from lr.invoke("get", {"key": "before"})
        return value

    assert bed.run(phase_two(), host=runtime.host) == "1"


def test_comm_unknown_host_rejected():
    from repro.core.ids import ContactAddress
    from repro.sim.transport import TransportError

    bed = GlobeBed()
    gos = bed.gos("gos-1", "r0/c0/m0/s0")

    def create():
        lr = yield from gos.create_local_replica(
            None, "test.kv", "client_server", "server")
        return lr

    server_lr = bed.run(create())

    def attempt():
        ghost = ContactAddress("no-such-host", 7100, "client_server")
        try:
            yield from server_lr.comm.send_dso_message(
                ghost, server_lr.oid, {"type": "pull"})
        except TransportError:
            return "rejected"

    assert bed.run(attempt(), host=gos.host) == "rejected"
