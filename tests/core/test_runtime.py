"""Unit tests for the run-time system and bind()."""

import pytest

from repro.core.ids import ContactAddress, ObjectId
from repro.core.runtime import BindError
from tests.util import GlobeBed


@pytest.fixture
def bed():
    return GlobeBed()


def _object_on(bed, gos_name="gos-1", site="r0/c0/m0/s0"):
    gos = bed.gos(gos_name, site)

    def create():
        lr = yield from gos.create_local_replica(
            None, "test.kv", "client_server", "server")
        return lr

    return bed.run(create())


def test_bind_unknown_oid_fails(bed):
    runtime = bed.runtime("client-1", "r0/c0/m0/s0")

    def use():
        try:
            yield from runtime.bind(ObjectId.from_seed("nothing"))
        except BindError:
            return "no address"

    assert bed.run(use(), host=runtime.host) == "no address"


def test_bind_caches_representative(bed):
    server_lr = _object_on(bed)
    runtime = bed.runtime("client-1", "r0/c0/m0/s1")

    def use():
        first = yield from runtime.bind(server_lr.oid)
        second = yield from runtime.bind(server_lr.oid)
        return first is second

    assert bed.run(use(), host=runtime.host) is True
    assert runtime.binds_performed == 1


def test_rebind_with_refresh_builds_new_representative(bed):
    server_lr = _object_on(bed)
    runtime = bed.runtime("client-1", "r0/c0/m0/s1")

    def use():
        first = yield from runtime.bind(server_lr.oid)
        second = yield from runtime.bind(server_lr.oid, refresh=True)
        return first is second

    assert bed.run(use(), host=runtime.host) is False
    assert runtime.binds_performed == 2


def test_bind_unknown_protocol_fails(bed):
    oid = ObjectId.from_seed("weird")
    wire = ContactAddress("nowhere", 1, "exotic_protocol",
                          impl_id="test.kv").to_wire()
    bed.run(bed.gls.register(oid.hex, wire))
    runtime = bed.runtime("client-1", "r0/c0/m0/s0")

    def use():
        try:
            yield from runtime.bind(oid)
        except BindError as exc:
            return str(exc)

    assert "exotic_protocol" in bed.run(use(), host=runtime.host)


def test_unbind_detaches(bed):
    server_lr = _object_on(bed)
    runtime = bed.runtime("client-1", "r0/c0/m0/s1")

    def use():
        yield from runtime.bind(server_lr.oid)
        runtime.unbind(server_lr.oid)
        return len(runtime.bound)

    assert bed.run(use(), host=runtime.host) == 0


def test_bind_loads_implementation_once_per_host(bed):
    server_lr = _object_on(bed)
    runtime = bed.runtime("client-1", "r1/c0/m0/s0")
    repo_host = bed.world.host("repo-1", "r0/c0/m0/s0")
    bed.repository.add_repository_host(repo_host)

    def use():
        yield from runtime.bind(server_lr.oid)
        yield from runtime.bind(server_lr.oid, refresh=True)
        return bed.repository.downloads

    # One download despite two binds: the implementation cache.
    # (The GOS itself loaded without cost: no repo host existed yet.)
    assert bed.run(use(), host=runtime.host) == 1
