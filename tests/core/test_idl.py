"""Unit tests for interface declarations."""

import pytest

from repro.core.idl import IdlError, Interface, Mode
from tests.util import Counter, KvStore


def test_interface_collected_from_decorators():
    interface = KvStore.interface
    assert interface.mode("put") == Mode.WRITE
    assert interface.mode("get") == Mode.READ
    assert interface.mode("delete") == Mode.WRITE
    assert "size" in interface


def test_undeclared_method_rejected():
    with pytest.raises(IdlError):
        KvStore.interface.mode("snapshot_state")
    with pytest.raises(IdlError):
        KvStore.interface.spec("nonexistent")


def test_interface_per_class():
    assert "increment" in Counter.interface
    assert "increment" not in KvStore.interface


def test_interface_of_direct():
    interface = Interface.of(Counter)
    assert sorted(interface.methods) == ["increment", "value"]
