"""Unit tests for certificates and certificate authorities."""

import random

import pytest

from repro.security.acl import Role, role_attribute, roles_from_certificate
from repro.security.certs import (Certificate, CertificateAuthority,
                                  CertificateError, Credentials)
from repro.security.crypto import RsaKeyPair


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority("gdn-ca", random.Random(1))


def test_ca_root_is_self_verifying(ca):
    assert ca.verify(ca.root_certificate)


def test_issue_and_verify(ca):
    subject_keys = RsaKeyPair.generate(random.Random(2), bits=512)
    certificate = ca.issue("gos-1", subject_keys.public,
                           role_attribute(Role.GDN_HOST))
    assert ca.verify(certificate)
    assert certificate.subject == "gos-1"
    assert roles_from_certificate(certificate) == {Role.GDN_HOST}


def test_forged_certificate_rejected(ca):
    subject_keys = RsaKeyPair.generate(random.Random(3), bits=512)
    forged = Certificate("admin", subject_keys.public, ca.name,
                         role_attribute(Role.ADMIN), signature=12345)
    assert not ca.verify(forged)


def test_attribute_tampering_invalidates_signature(ca):
    subject_keys = RsaKeyPair.generate(random.Random(4), bits=512)
    certificate = ca.issue("mod-1", subject_keys.public,
                           role_attribute(Role.MODERATOR))
    certificate.attributes["gdn-role"] = Role.ADMIN.value
    assert not ca.verify(certificate)


def test_wire_round_trip(ca):
    subject_keys = RsaKeyPair.generate(random.Random(5), bits=512)
    certificate = ca.issue("host-1", subject_keys.public)
    restored = Certificate.from_wire(certificate.to_wire())
    assert ca.verify(restored)
    assert restored.wire_size() >= 700
    with pytest.raises(CertificateError):
        Certificate.from_wire({"subject": "x"})


def test_credentials_trust(ca):
    alice = Credentials.issue_for("alice", ca, random.Random(6))
    bob = Credentials.issue_for("bob", ca, random.Random(7))
    assert alice.trusts(bob.certificate)
    other_ca = CertificateAuthority("rogue-ca", random.Random(8))
    mallory = Credentials.issue_for("mallory", other_ca, random.Random(9))
    assert not alice.trusts(mallory.certificate)


def test_unknown_role_strings_ignored(ca):
    subject_keys = RsaKeyPair.generate(random.Random(10), bits=512)
    certificate = ca.issue("weird", subject_keys.public,
                           {"gdn-role": "moderator,galactic-emperor"})
    assert roles_from_certificate(certificate) == {Role.MODERATOR}
