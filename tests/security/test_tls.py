"""Integration tests for TLS-style channels over simulated connections."""

import random

import pytest

from repro.security.acl import Role, role_attribute
from repro.security.certs import CertificateAuthority, Credentials
from repro.security.tls import (HandshakeError, SecurityError,
                                client_wrapper, server_factory)
from repro.sim.topology import Topology
from repro.sim.transport import ConnectionClosed
from repro.sim.world import World


@pytest.fixture(scope="module")
def pki():
    rng = random.Random(77)
    ca = CertificateAuthority("gdn-ca", rng)
    return {
        "ca": ca,
        "server": Credentials.issue_for("gos-1", ca, rng,
                                        role_attribute(Role.GDN_HOST)),
        "client": Credentials.issue_for("modtool-1", ca, rng,
                                        role_attribute(Role.MODERATOR)),
        "browser": Credentials.issue_for("browser-trust", ca, rng),
        "rogue": Credentials.issue_for(
            "gos-1", CertificateAuthority("rogue-ca", random.Random(5)),
            random.Random(6)),
    }


@pytest.fixture
def world():
    return World(topology=Topology.balanced(2, 2, 2, 2), seed=13)


def _secure_pair(world, pki, require_client_cert=False, encryption=True,
                 client_credentials="client"):
    """Handshake a channel pair; returns (client_channel, server_channel)."""
    a = world.host("client-host", "r0/c0/m0/s0")
    b = world.host("server-host", "r0/c1/m0/s0")
    listener = b.listen(443)
    factory = server_factory(pki["server"],
                             require_client_cert=require_client_cert,
                             encryption=encryption)
    result = {}

    def server():
        conn = yield listener.accept()
        channel = yield from factory(conn)
        result["server"] = channel

    def client():
        conn = yield from a.connect(b, 443)
        wrap = client_wrapper(credentials=pki.get(client_credentials),
                              trust=pki["browser"], encryption=encryption)
        channel = yield from wrap(conn)
        result["client"] = channel

    b.spawn(server())
    proc = a.spawn(client())
    world.run_until(proc, limit=1e6)
    return result["client"], result["server"]


def test_one_way_auth_identities(world, pki):
    client_channel, server_channel = _secure_pair(world, pki,
                                                  client_credentials=None)
    # The server authenticated itself to the client...
    assert client_channel.peer_principal == "gos-1"
    # ...but the anonymous client has no verified identity.
    assert server_channel.peer_principal is None


def test_two_way_auth_identities(world, pki):
    client_channel, server_channel = _secure_pair(world, pki,
                                                  require_client_cert=True)
    assert client_channel.peer_principal == "gos-1"
    assert server_channel.peer_principal == "modtool-1"


def test_data_flows_both_ways(world, pki):
    client_channel, server_channel = _secure_pair(world, pki)
    transcript = []

    def server_side():
        message = yield server_channel.recv()
        transcript.append(("server", message))
        server_channel.send({"reply": message["n"] + 1})

    def client_side():
        client_channel.send({"n": 41})
        reply = yield client_channel.recv()
        transcript.append(("client", reply))

    world.get_host("server-host").spawn(server_side())
    proc = world.get_host("client-host").spawn(client_side())
    world.run_until(proc, limit=1e6)
    assert ("server", {"n": 41}) in transcript
    assert ("client", {"reply": 42}) in transcript


def test_rogue_server_certificate_rejected(world, pki):
    a = world.host("client-host", "r0/c0/m0/s0")
    b = world.host("mitm-host", "r0/c0/m0/s1")
    listener = b.listen(443)
    factory = server_factory(pki["rogue"])  # signed by an untrusted CA

    def server():
        try:
            conn = yield listener.accept()
            yield from factory(conn)
        except (HandshakeError, ConnectionClosed):
            pass

    def client():
        conn = yield from a.connect(b, 443)
        wrap = client_wrapper(credentials=pki["client"])
        try:
            yield from wrap(conn)
        except HandshakeError as exc:
            return "rejected: %s" % exc

    b.spawn(server())
    proc = a.spawn(client())
    outcome = world.run_until(proc, limit=1e6)
    assert outcome.startswith("rejected")
    assert "untrusted" in outcome


def test_server_identity_pinning(world, pki):
    a = world.host("client-host", "r0/c0/m0/s0")
    b = world.host("server-host", "r0/c0/m0/s1")
    listener = b.listen(443)
    factory = server_factory(pki["server"])  # legitimate "gos-1"

    def server():
        try:
            conn = yield listener.accept()
            yield from factory(conn)
        except (HandshakeError, ConnectionClosed):
            pass

    def client():
        conn = yield from a.connect(b, 443)
        wrap = client_wrapper(credentials=pki["client"],
                              expected_server="gos-2")
        try:
            yield from wrap(conn)
        except HandshakeError:
            return "mismatch detected"

    b.spawn(server())
    proc = a.spawn(client())
    assert world.run_until(proc, limit=1e6) == "mismatch detected"


def test_client_without_cert_rejected_in_two_way_mode(world, pki):
    a = world.host("client-host", "r0/c0/m0/s0")
    b = world.host("server-host", "r0/c0/m0/s1")
    listener = b.listen(443)
    factory = server_factory(pki["server"], require_client_cert=True)
    server_outcome = {}

    def server():
        conn = yield listener.accept()
        try:
            yield from factory(conn)
            server_outcome["result"] = "accepted"
        except (HandshakeError, ConnectionClosed):
            # Either side may notice first: the server refuses the
            # missing certificate, or sees the client abort the
            # handshake by closing.
            server_outcome["result"] = "refused"

    def client():
        conn = yield from a.connect(b, 443)
        wrap = client_wrapper(trust=pki["browser"])  # no client cert
        try:
            yield from wrap(conn)
        except HandshakeError:
            return "failed"

    b.spawn(server())
    proc = a.spawn(client())
    assert world.run_until(proc, limit=1e6) == "failed"
    world.run(until=world.now + 5)  # let the server observe the abort
    assert server_outcome["result"] == "refused"


def test_tampered_record_detected(world, pki):
    client_channel, server_channel = _secure_pair(world, pki)

    def attack():
        # Inject a forged frame directly on the underlying connection,
        # bypassing the secure channel (an on-path attacker on the TCP
        # stream).
        client_channel.conn.send({"s": 1, "p": {"evil": True},
                                  "m": b"\x00" * 32})
        yield world.sim.timeout(0)

    def victim():
        try:
            yield server_channel.recv()
        except SecurityError:
            return "tamper detected"

    world.get_host("client-host").spawn(attack())
    proc = world.get_host("server-host").spawn(victim())
    assert world.run_until(proc, limit=1e6) == "tamper detected"
    assert server_channel.integrity_failures == 1


def test_replayed_record_detected(world, pki):
    client_channel, server_channel = _secure_pair(world, pki)

    def replay():
        client_channel.send({"n": 1})
        first_frame, wire = None, None
        # Capture and re-send the exact frame (sequence number 1).
        # The pump has queued it; emulate the attacker replaying by
        # recomputing the identical frame.
        mac = client_channel._mac(client_channel._send_key, 1, {"n": 1})
        yield world.sim.timeout(1.0)  # let the original arrive
        client_channel.conn.send({"s": 1, "p": {"n": 1}, "m": mac})

    def victim():
        first = yield server_channel.recv()
        try:
            yield server_channel.recv()
        except SecurityError:
            return ("ok", first)

    world.get_host("client-host").spawn(replay())
    proc = world.get_host("server-host").spawn(victim())
    outcome = world.run_until(proc, limit=1e6)
    assert outcome == ("ok", {"n": 1})


def test_encryption_negotiation_and_cost(world, pki):
    """Integrity-only channels beat encrypting channels on CPU time —
    the §6.3 trade-off in miniature."""

    def transfer_time(encryption):
        local_world = World(topology=Topology.balanced(2, 2, 2, 2), seed=13)
        client_channel, server_channel = _secure_pair(
            local_world, pki, encryption=encryption)

        def sender():
            start = local_world.now
            client_channel.send({"data": b"x" * 200_000})
            message = yield server_channel.recv()
            return local_world.now - start

        proc = local_world.get_host("client-host").spawn(sender())
        return local_world.run_until(proc, limit=1e6)

    assert transfer_time(encryption=False) < transfer_time(encryption=True)


def test_channel_close_propagates(world, pki):
    client_channel, server_channel = _secure_pair(world, pki)

    def server_side():
        try:
            yield server_channel.recv()
        except ConnectionClosed:
            return "closed"

    proc = world.get_host("server-host").spawn(server_side())
    client_channel.close()
    assert world.run_until(proc, limit=1e6) == "closed"


def test_forged_record_size_cannot_stall_or_discount_the_pump(world, pki):
    """The carried record size ("w") is not MAC-covered, so the recv
    pump only believes values inside a sane range: a forged petabyte
    declaration must not buy the attacker an unbounded CPU charge on
    the victim (stalling every legitimate record queued behind it),
    and a negative one must not skip the charge."""
    for forged_w in (10**15, -5):
        local_world = World(topology=Topology.balanced(2, 2, 2, 2), seed=13)
        client_channel, server_channel = _secure_pair(local_world, pki)

        def attack():
            client_channel.conn.send({"s": 1, "p": {"evil": True},
                                      "m": b"\x00" * 32, "w": forged_w})
            yield local_world.sim.timeout(0)

        def victim():
            try:
                yield server_channel.recv()
            except SecurityError:
                return local_world.now

        local_world.get_host("client-host").spawn(attack())
        proc = local_world.get_host("server-host").spawn(victim())
        detected_at = local_world.run_until(proc, limit=1e6)
        # Tamper detected after a cost bounded by what actually
        # crossed the wire (the honest walk), not the forged claim.
        assert detected_at < 60.0, "forged w=%r stalled the pump" % forged_w
        assert server_channel.integrity_failures == 1
