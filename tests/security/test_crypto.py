"""Unit tests for the crypto primitives."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.crypto import (CryptoError, RsaKeyPair, generate_prime,
                                   hmac_sha256, sha256)


@pytest.fixture(scope="module")
def keypair():
    return RsaKeyPair.generate(random.Random(42), bits=512)


def test_prime_generation_deterministic():
    a = generate_prime(128, random.Random(7))
    b = generate_prime(128, random.Random(7))
    assert a == b
    assert a.bit_length() == 128
    assert a % 2 == 1


def test_prime_rejects_tiny():
    with pytest.raises(CryptoError):
        generate_prime(4, random.Random(1))


def test_sign_verify_round_trip(keypair):
    signature = keypair.sign(b"package contents")
    assert keypair.public.verify(b"package contents", signature)


def test_signature_fails_on_modified_data(keypair):
    signature = keypair.sign(b"original")
    assert not keypair.public.verify(b"tampered", signature)


def test_signature_fails_with_wrong_key(keypair):
    other = RsaKeyPair.generate(random.Random(43), bits=512)
    signature = keypair.sign(b"data")
    assert not other.public.verify(b"data", signature)


def test_encrypt_decrypt_round_trip(keypair):
    message = 0xDEADBEEF
    assert keypair.decrypt_int(keypair.public.encrypt_int(message)) == message


def test_encrypt_out_of_range_rejected(keypair):
    with pytest.raises(CryptoError):
        keypair.public.encrypt_int(keypair.public.n + 1)


def test_public_key_wire_round_trip(keypair):
    from repro.security.crypto import PublicKey

    restored = PublicKey.from_wire(keypair.public.to_wire())
    assert restored == keypair.public
    assert restored.fingerprint() == keypair.public.fingerprint()


def test_hmac_and_sha_basics():
    assert sha256(b"a") != sha256(b"b")
    assert hmac_sha256(b"k1", b"m") != hmac_sha256(b"k2", b"m")
    assert hmac_sha256(b"k", b"m") == hmac_sha256(b"k", b"m")


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 255))
def test_rsa_round_trip_property(message):
    keypair = _shared_keypair()
    assert keypair.decrypt_int(keypair.public.encrypt_int(message)) == message


_cached_keypair = None


def _shared_keypair():
    global _cached_keypair
    if _cached_keypair is None:
        _cached_keypair = RsaKeyPair.generate(random.Random(99), bits=512)
    return _cached_keypair
