"""Tests for the baseline systems (single-server WWW, FTP mirrors)."""

import pytest

from repro.baselines.mirror import MirrorNetwork
from repro.baselines.uniform import UNIFORM_STRATEGIES
from repro.baselines.www import WwwClient, WwwServer
from repro.gdn.scenario import ObjectUsage
from repro.sim.topology import Level, Topology
from repro.sim.world import World


@pytest.fixture
def world():
    return World(topology=Topology.balanced(2, 2, 2, 2), seed=17)


def run(world, generator, host, limit=1e7):
    return world.run_until(host.spawn(generator), limit=limit)


# -- single-server WWW ---------------------------------------------------------


def test_www_serves_documents(world):
    origin = world.host("www-origin", "r0/c0/m0/s0")
    server = WwwServer(world, origin)
    server.publish("/doc", b"hello web")
    server.start()
    user = world.host("user", "r1/c0/m0/s0")
    client = WwwClient(world, user, server)

    def fetch():
        status, body, elapsed = yield from client.get("/doc")
        return status, body, elapsed

    status, body, elapsed = run(world, fetch(), user)
    assert status == 200
    assert body == b"hello web"
    assert elapsed > 2 * 0.150  # cross-region round trips


def test_www_missing_document(world):
    origin = world.host("www-origin", "r0/c0/m0/s0")
    server = WwwServer(world, origin)
    server.start()
    user = world.host("user", "r0/c0/m0/s1")
    client = WwwClient(world, user, server)

    def fetch():
        status, _body, _elapsed = yield from client.get("/ghost")
        return status

    assert run(world, fetch(), user) == 404


def test_www_all_traffic_hits_origin(world):
    origin = world.host("www-origin", "r0/c0/m0/s0")
    server = WwwServer(world, origin)
    server.publish("/doc", b"d" * 10_000)
    server.start()
    for index, site in enumerate(["r0/c0/m0/s1", "r1/c0/m0/s0",
                                  "r1/c1/m0/s0"]):
        user = world.host("user-%d" % index, site)
        client = WwwClient(world, user, server)

        def fetch(client=client):
            yield from client.get("/doc")

        run(world, fetch(), user)
    assert server.requests_served == 3
    # Remote users dragged the document across the world link.
    assert world.network.meter.bytes_by_level[Level.WORLD] > 20_000


# -- FTP-style mirroring ----------------------------------------------------------


def test_mirror_sync_and_local_fetch(world):
    origin_host = world.host("ftp-origin", "r0/c0/m0/s0")
    network = MirrorNetwork(world, origin_host, sync_period=3600)
    mirror_host = world.host("ftp-mirror", "r1/c0/m0/s0")
    network.add_mirror(mirror_host)
    network.publish("/pkg/gcc.tar.gz", b"g" * 50_000)

    def sync():
        yield from network.sync_all()

    run(world, sync(), origin_host)
    user = world.host("user", "r1/c0/m0/s1")

    def fetch():
        status, body, elapsed = yield from network.fetch(
            user, "/pkg/gcc.tar.gz")
        return status, len(body), elapsed

    status, size, elapsed = run(world, fetch(), user)
    assert status == 200
    assert size == 50_000
    assert elapsed < 0.2  # served inside the region


def test_mirror_staleness_window(world):
    origin_host = world.host("ftp-origin", "r0/c0/m0/s0")
    network = MirrorNetwork(world, origin_host, sync_period=3600)
    mirror_host = world.host("ftp-mirror", "r1/c0/m0/s0")
    mirror = network.add_mirror(mirror_host)
    network.publish("/pkg", b"version-1")
    run(world, network.sync_all(), origin_host)
    network.publish("/pkg", b"version-2")
    # Before the next sync round the mirror still serves version 1.
    assert mirror.documents["/pkg"] == b"version-1"
    run(world, network.sync_all(), origin_host)
    assert mirror.documents["/pkg"] == b"version-2"


def test_mirror_periodic_sync_runs(world):
    origin_host = world.host("ftp-origin", "r0/c0/m0/s0")
    network = MirrorNetwork(world, origin_host, sync_period=100.0)
    mirror = network.add_mirror(world.host("ftp-mirror", "r1/c0/m0/s0"))
    network.publish("/pkg", b"data")
    world.run(until=250.0)
    assert mirror.documents.get("/pkg") == b"data"
    assert network.syncs_completed >= 2


def test_mirror_sync_transfers_everything_once(world):
    """Mirrors carry the whole corpus even if nobody reads it."""
    origin_host = world.host("ftp-origin", "r0/c0/m0/s0")
    network = MirrorNetwork(world, origin_host, sync_period=1e9)
    mirror = network.add_mirror(world.host("ftp-mirror", "r1/c0/m0/s0"))
    for index in range(20):
        network.publish("/pkg/%d" % index, b"x" * 10_000)
    before = world.network.meter.bytes_by_level[Level.WORLD]
    run(world, network.sync_all(), origin_host)
    transferred = world.network.meter.bytes_by_level[Level.WORLD] - before
    assert transferred > 20 * 10_000
    assert mirror.total_bytes() == 20 * 10_000
    # A second sync with no changes moves only the manifest.
    before = world.network.meter.bytes_by_level[Level.WORLD]
    run(world, network.sync_all(), origin_host)
    assert world.network.meter.bytes_by_level[Level.WORLD] - before < 5_000


# -- uniform strategies -------------------------------------------------------------


def test_uniform_strategies_assign_same_scenario_everywhere():
    strategies = UNIFORM_STRATEGIES("gos-a", ["gos-a", "gos-b", "gos-c"])
    assert set(strategies) == {"NoRepl", "CacheTTL", "ReplAll"}
    hot = ObjectUsage({"r0": 1000}, writes=0)
    cold = ObjectUsage({"r1": 1}, writes=50)
    for name, assign in strategies.items():
        s_hot = assign("/doc/hot", hot)
        s_cold = assign("/doc/cold", cold)
        assert s_hot.protocol == s_cold.protocol
        assert s_hot.replica_count == s_cold.replica_count, name
    assert strategies["ReplAll"]("/x", hot).replica_count == 3
    assert strategies["NoRepl"]("/x", hot).cache_ttl is None
