"""Regression tests: replication protocol state survives reboots.

A recovered master that forgot its slave list (or rolled its version
counter back) would silently stop propagating writes — slaves ignore
pushes with stale version numbers.  Protocol state therefore
checkpoints next to semantics state, and ``checkpoint_on_write`` makes
the master's counter monotonic across crashes.
"""

import pytest

from tests.util import GlobeBed


@pytest.fixture
def bed():
    return GlobeBed()


def _build_pair(bed, checkpoint_on_write=True):
    master_gos = bed.gos("gos-master", "r0/c0/m0/s0",
                         checkpoint_on_write=checkpoint_on_write)
    slave_gos = bed.gos("gos-slave", "r1/c0/m0/s0")

    def build():
        master = yield from master_gos.create_local_replica(
            None, "test.kv", "master_slave", "master")
        yield from slave_gos.create_local_replica(
            master.oid, "test.kv", "master_slave", "slave",
            master=master.contact_address)
        return master

    master_lr = bed.run(build())
    return master_gos, slave_gos, master_lr


def _write(bed, master_gos, oid, key, value):
    """Drive a write through the GOS message path (so that
    checkpoint_on_write fires, as it would for real clients)."""
    from repro.core.marshal import marshal_invocation
    from repro.sim import rpc

    client = bed.world.hosts.get("writer") or bed.world.host(
        "writer", "r0/c0/m0/s1")

    def drive():
        yield from rpc.call(
            client, master_gos.host, master_gos.port, "dso_message",
            {"oid": oid.hex,
             "msg": {"type": "invoke", "mode": "write",
                     "payload": marshal_invocation(
                         "put", {"key": key, "value": value})}})

    bed.run(drive(), host=client)


def test_master_remembers_slaves_across_reboot(bed):
    master_gos, slave_gos, master_lr = _build_pair(bed)
    _write(bed, master_gos, master_lr.oid, "before", "1")
    bed.world.run(until=bed.world.now + 5)

    master_gos.host.crash()
    master_gos.host.restart()
    bed.run(master_gos.recover())
    recovered = master_gos.replicas[master_lr.oid.hex]
    # The slave list survived the reboot...
    assert recovered.replication.slaves
    # ...so post-recovery writes still reach the slave.
    _write(bed, master_gos, master_lr.oid, "after", "2")
    bed.world.run(until=bed.world.now + 5)
    slave_lr = slave_gos.replicas[master_lr.oid.hex]
    assert slave_lr.semantics.get("after") == "2"


def test_master_version_is_monotonic_across_reboot(bed):
    master_gos, slave_gos, master_lr = _build_pair(bed)
    for index in range(3):
        _write(bed, master_gos, master_lr.oid, "k%d" % index, "v")
    bed.world.run(until=bed.world.now + 5)
    version_before = master_gos.replicas[master_lr.oid.hex] \
        .replication.version
    assert version_before == 3

    master_gos.host.crash()
    master_gos.host.restart()
    bed.run(master_gos.recover())
    recovered = master_gos.replicas[master_lr.oid.hex]
    # checkpoint_on_write persisted every increment: no rollback, and
    # the slave (also at 3) will accept the next push (version 4).
    assert recovered.replication.version == version_before
    _write(bed, master_gos, master_lr.oid, "post", "crash")
    bed.world.run(until=bed.world.now + 5)
    slave_lr = slave_gos.replicas[master_lr.oid.hex]
    assert slave_lr.semantics.get("post") == "crash"
    assert slave_lr.replication.version == version_before + 1


def test_without_write_checkpointing_master_can_roll_back(bed):
    """The failure mode the durability machinery prevents, shown by
    disabling it: the slave ends up permanently ahead."""
    master_gos, slave_gos, master_lr = _build_pair(
        bed, checkpoint_on_write=False)
    for index in range(3):
        _write(bed, master_gos, master_lr.oid, "k%d" % index, "v")
    bed.world.run(until=bed.world.now + 5)

    master_gos.host.crash()
    master_gos.host.restart()
    bed.run(master_gos.recover())
    recovered = master_gos.replicas[master_lr.oid.hex]
    slave_lr = slave_gos.replicas[master_lr.oid.hex]
    # Rolled back to the creation checkpoint:
    assert recovered.replication.version < slave_lr.replication.version
