"""Unit/integration tests for the Globe Object Server."""

import pytest

from repro.core.ids import ObjectId
from repro.gos.server import NotAuthorized
from repro.sim import rpc
from tests.util import GlobeBed


@pytest.fixture
def bed():
    return GlobeBed()


def test_create_object_allocates_oid_and_registers(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")

    def create():
        lr = yield from gos.create_local_replica(
            None, "test.kv", "client_server", "server")
        return lr

    lr = bed.run(create())
    assert lr.oid.hex in bed.gls.records
    assert bed.gls.records[lr.oid.hex][0]["host"] == "gos-1"
    assert lr.role == "server"


def test_control_commands_over_rpc(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")
    tool = bed.world.host("modtool", "r0/c0/m0/s1")

    def drive():
        created = yield from rpc.call(tool, gos.host, gos.port,
                                      "create_object",
                                      {"impl_id": "test.kv",
                                       "protocol": "client_server",
                                       "role": "server"})
        listed = yield from rpc.call(tool, gos.host, gos.port,
                                     "list_replicas", {})
        removed = yield from rpc.call(tool, gos.host, gos.port,
                                      "remove_replica",
                                      {"oid": created["oid"]})
        after = yield from rpc.call(tool, gos.host, gos.port,
                                    "list_replicas", {})
        return created, listed, removed, after

    created, listed, removed, after = bed.run(drive(), host=tool)
    assert listed["replicas"][0]["oid"] == created["oid"]
    assert removed["removed"] == created["oid"]
    assert after["replicas"] == []
    # Removal also deregistered the contact address.
    assert bed.gls.records[created["oid"]] == []


def test_remove_unknown_replica_faults(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")
    tool = bed.world.host("modtool", "r0/c0/m0/s1")

    def drive():
        try:
            yield from rpc.call(tool, gos.host, gos.port, "remove_replica",
                                {"oid": ObjectId.from_seed("ghost").hex})
        except rpc.RpcFault as fault:
            return fault.kind

    assert bed.run(drive(), host=tool) == "GosError"


def test_dso_message_to_missing_replica_is_an_error_reply(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")
    client = bed.world.host("client", "r0/c0/m0/s1")

    def drive():
        reply = yield from rpc.call(
            client, gos.host, gos.port, "dso_message",
            {"oid": ObjectId.from_seed("ghost").hex, "msg": {"type": "pull"}})
        return reply

    reply = bed.run(drive(), host=client)
    assert reply["type"] == "error"


def test_authorizer_blocks_control_commands(bed):
    def deny_all(ctx, operation, oid_hex=None):
        return False

    gos = bed.gos("gos-1", "r0/c0/m0/s0", authorizer=deny_all)
    tool = bed.world.host("modtool", "r0/c0/m0/s1")

    def drive():
        try:
            yield from rpc.call(tool, gos.host, gos.port, "create_object",
                                {"impl_id": "test.kv",
                                 "protocol": "client_server",
                                 "role": "server"})
        except rpc.RpcFault as fault:
            return fault.kind

    assert bed.run(drive(), host=tool) == "NotAuthorized"


def test_authorizer_blocks_write_invocations_but_not_reads(bed):
    from repro.core.marshal import marshal_invocation

    def modify_needs_principal(ctx, operation, oid_hex=None):
        if operation == "modify":
            return ctx.peer_principal == "moderator"
        return True

    gos = bed.gos("gos-1", "r0/c0/m0/s0",
                  authorizer=modify_needs_principal)

    def create():
        lr = yield from gos.create_local_replica(
            None, "test.kv", "client_server", "server")
        return lr

    lr = bed.run(create())
    client = bed.world.host("client", "r0/c0/m0/s1")

    def drive():
        write = {"type": "invoke", "mode": "write",
                 "payload": marshal_invocation("put", {"key": "k",
                                                       "value": "v"})}
        read = {"type": "invoke", "mode": "read",
                "payload": marshal_invocation("size", {})}
        outcome = {}
        try:
            yield from rpc.call(client, gos.host, gos.port, "dso_message",
                                {"oid": lr.oid.hex, "msg": write})
            outcome["write"] = "allowed"
        except rpc.RpcFault as fault:
            outcome["write"] = fault.kind
        reply = yield from rpc.call(client, gos.host, gos.port, "dso_message",
                                    {"oid": lr.oid.hex, "msg": read})
        outcome["read"] = reply["type"]
        return outcome

    outcome = bed.run(drive(), host=client)
    assert outcome["write"] == "NotAuthorized"
    assert outcome["read"] == "result"


def test_graceful_shutdown_and_recover_preserves_state(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")

    def create_and_fill():
        lr = yield from gos.create_local_replica(
            None, "test.kv", "client_server", "server")
        lr.semantics.put("persist", "me")
        yield from gos.shutdown()
        return lr.oid

    oid = bed.run(create_and_fill())
    gos.host.crash()
    gos.host.restart()

    def recover():
        yield from gos.recover()

    bed.run(recover())
    assert gos.replicas[oid.hex].semantics.data == {"persist": "me"}


def test_crash_without_checkpoint_recovers_creation_time_state(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")

    def create():
        lr = yield from gos.create_local_replica(
            None, "test.kv", "client_server", "server")
        # Mutate *after* the creation checkpoint, then crash hard.
        lr.semantics.put("lost", "update")
        return lr.oid

    oid = bed.run(create())
    gos.host.crash()
    gos.host.restart()
    bed.run(gos.recover())
    # The uncheckpointed write is gone; the replica itself survived.
    assert oid.hex in gos.replicas
    assert gos.replicas[oid.hex].semantics.data == {}


def test_recovered_slave_rejoins_and_catches_up(bed):
    master_gos = bed.gos("gos-master", "r0/c0/m0/s0")
    slave_gos = bed.gos("gos-slave", "r1/c0/m0/s0")

    def build():
        master = yield from master_gos.create_local_replica(
            None, "test.kv", "master_slave", "master")
        yield from slave_gos.create_local_replica(
            master.oid, "test.kv", "master_slave", "slave",
            master=master.contact_address)
        return master

    master_lr = bed.run(build())
    slave_gos.host.crash()
    # While the slave is down, the master takes a write.
    master_lr.semantics.put("while-down", "missed")
    master_lr.replication.version += 1
    slave_gos.host.restart()
    bed.run(slave_gos.recover())
    slave_lr = slave_gos.replicas[master_lr.oid.hex]
    assert slave_lr.semantics.data == {"while-down": "missed"}
    assert slave_lr.replication.version == master_lr.replication.version


def test_checkpoint_command_persists_current_state(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")
    tool = bed.world.host("modtool", "r0/c0/m0/s1")

    def create():
        lr = yield from gos.create_local_replica(
            None, "test.kv", "client_server", "server")
        return lr

    lr = bed.run(create())
    lr.semantics.put("check", "pointed")

    def checkpoint():
        reply = yield from rpc.call(tool, gos.host, gos.port,
                                    "checkpoint", {})
        return reply

    assert bed.run(checkpoint(), host=tool) == {"checkpointed": 1}
    gos.host.crash()
    gos.host.restart()
    bed.run(gos.recover())
    assert gos.replicas[lr.oid.hex].semantics.data == {"check": "pointed"}


def test_ping(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0")
    client = bed.world.host("client", "r0/c0/m0/s1")

    def drive():
        value = yield from rpc.call(client, gos.host, gos.port, "ping", {})
        return value

    assert bed.run(drive(), host=client) == "pong"
