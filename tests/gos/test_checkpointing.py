"""Tests for periodic GOS checkpointing (bounding crash loss)."""

import pytest

from tests.util import GlobeBed


@pytest.fixture
def bed():
    return GlobeBed()


def test_periodic_checkpoint_bounds_loss(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0", checkpoint_interval=10.0)

    def create():
        lr = yield from gos.create_local_replica(
            None, "test.kv", "client_server", "server")
        return lr

    lr = bed.run(create())
    # Mutate after the creation checkpoint; let one interval pass.
    lr.semantics.put("a", "1")
    bed.world.run(until=bed.world.now + 15.0)
    # Mutate again, crash before the next interval fires.
    lr.semantics.put("b", "2")
    gos.host.crash()
    gos.host.restart()
    bed.run(gos.recover())
    recovered = gos.replicas[lr.oid.hex].semantics.data
    # The periodic checkpoint captured "a"; "b" is within the loss
    # window and gone.
    assert recovered == {"a": "1"}


def test_checkpointer_stops_with_server(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0", checkpoint_interval=5.0)
    writes_before = gos.persistence.writes
    bed.world.run(until=20.0)
    assert gos.persistence.writes == writes_before  # nothing to save yet
    gos.stop()
    assert gos._checkpointer is None


def test_recover_restarts_periodic_checkpointing(bed):
    gos = bed.gos("gos-1", "r0/c0/m0/s0", checkpoint_interval=10.0)

    def create():
        lr = yield from gos.create_local_replica(
            None, "test.kv", "client_server", "server")
        return lr

    lr = bed.run(create())
    gos.host.crash()
    gos.host.restart()
    bed.run(gos.recover())
    # After recovery, new mutations are checkpointed again.
    gos.replicas[lr.oid.hex].semantics.put("post", "recovery")
    bed.world.run(until=bed.world.now + 15.0)
    gos.host.crash()
    gos.host.restart()
    bed.run(gos.recover())
    assert gos.replicas[lr.oid.hex].semantics.data == {"post": "recovery"}
