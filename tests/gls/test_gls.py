"""Integration tests for the Globe Location Service."""

import pytest

from repro.core.ids import ContactAddress, ObjectId
from repro.gls.service import GlsClient, GlsError
from repro.gls.tree import GlsTree
from repro.sim.topology import Level, Topology
from repro.sim.world import World


def make_world(seed=21):
    topo = Topology.balanced(regions=2, countries=2, cities=2, sites=2)
    return World(topology=topo, seed=seed)


def run(world, generator, host=None, limit=1e6):
    process = (host.spawn(generator) if host is not None
               else world.sim.process(generator))
    return world.run_until(process, limit=limit)


def ca_wire(world, host, role="server"):
    return ContactAddress(host.name, 7100, "client_server", role=role,
                          impl_id="test.kv",
                          site_path=host.site.path).to_wire()


@pytest.fixture
def deployment():
    world = make_world()
    tree = GlsTree(world)
    return world, tree


def test_tree_has_a_node_per_domain(deployment):
    world, tree = deployment
    # 16 sites + 8 cities + 4 countries + 2 regions + 1 root = 31
    assert len(tree.nodes) == 31
    assert len(tree.root_nodes()) == 1
    for path, subnodes in tree.nodes.items():
        for node in subnodes:
            assert node.domain.path == path


def test_register_creates_pointer_path_to_root(deployment):
    world, tree = deployment
    gos_host = world.host("gos-1", "r0/c0/m0/s0")
    client = GlsClient(world, gos_host, tree)
    oid_hex = run(world, client.register(None, ca_wire(world, gos_host)),
                  host=gos_host)

    leaf = tree.node_for("r0/c0/m0/s0", oid_hex)
    assert oid_hex in leaf.records
    assert leaf.records[oid_hex].contact_addresses
    for path in ("r0/c0/m0", "r0/c0", "r0", ""):
        node = tree.node_for(path, oid_hex)
        assert oid_hex in node.records, path
        assert node.records[oid_hex].forwarding_pointers


def test_lookup_same_site_is_local(deployment):
    world, tree = deployment
    gos_host = world.host("gos-1", "r0/c0/m0/s0")
    client = GlsClient(world, gos_host, tree)
    oid_hex = run(world, client.register(None, ca_wire(world, gos_host)),
                  host=gos_host)

    user = world.host("user-1", "r0/c0/m0/s0")
    user_client = GlsClient(world, user, tree)
    reply = run(world, user_client.lookup_detailed(oid_hex), host=user)
    assert reply["hops"] == 0
    assert reply["found"] == "r0/c0/m0/s0"
    assert reply["cas"][0]["host"] == "gos-1"


def test_lookup_hops_grow_with_distance(deployment):
    world, tree = deployment
    gos_host = world.host("gos-1", "r0/c0/m0/s0")
    client = GlsClient(world, gos_host, tree)
    oid_hex = run(world, client.register(None, ca_wire(world, gos_host)),
                  host=gos_host)

    hops_by_distance = []
    for i, site in enumerate(["r0/c0/m0/s0", "r0/c0/m0/s1", "r0/c0/m1/s0",
                              "r0/c1/m0/s0", "r1/c0/m0/s0"]):
        user = world.host("user-%d" % i, site)
        user_client = GlsClient(world, user, tree)
        reply = run(world, user_client.lookup_detailed(oid_hex), host=user)
        assert reply["cas"], site
        hops_by_distance.append(reply["hops"])
    assert hops_by_distance == sorted(hops_by_distance)
    assert hops_by_distance[0] == 0
    assert hops_by_distance[-1] > hops_by_distance[0]


def test_lookup_unknown_oid_returns_empty(deployment):
    world, tree = deployment
    user = world.host("user-1", "r0/c0/m0/s0")
    client = GlsClient(world, user, tree)
    reply = run(world, client.lookup_detailed(ObjectId.from_seed("ghost").hex),
                host=user)
    assert reply["cas"] == []
    assert reply["found"] is None


def test_multiple_replicas_nearest_first(deployment):
    world, tree = deployment
    near_gos = world.host("gos-near", "r0/c0/m0/s1")
    far_gos = world.host("gos-far", "r1/c0/m0/s0")
    near_client = GlsClient(world, near_gos, tree)
    far_client = GlsClient(world, far_gos, tree)
    oid_hex = run(world, near_client.register(
        None, ca_wire(world, near_gos, role="master")), host=near_gos)
    run(world, far_client.register(
        oid_hex, ca_wire(world, far_gos, role="slave")), host=far_gos)

    user = world.host("user-1", "r0/c0/m0/s0")
    user_client = GlsClient(world, user, tree)
    wires = run(world, user_client.lookup(oid_hex), host=user)
    # The GLS walk finds the near replica's record first (one hop up);
    # even if both were returned, sorting puts the near one first.
    assert wires[0]["host"] == "gos-near"


def test_second_replica_stops_pointer_propagation_early(deployment):
    world, tree = deployment
    gos_a = world.host("gos-a", "r0/c0/m0/s0")
    gos_b = world.host("gos-b", "r0/c0/m1/s0")  # same city tree branch
    client_a = GlsClient(world, gos_a, tree)
    client_b = GlsClient(world, gos_b, tree)
    oid_hex = run(world, client_a.register(None, ca_wire(world, gos_a)),
                  host=gos_a)
    root = tree.node_for("", oid_hex)
    root_updates_before = root.pointer_updates
    run(world, client_b.register(oid_hex, ca_wire(world, gos_b)),
        host=gos_b)
    # The country node r0/c0 already had a record; propagation stopped
    # there and the root saw no new pointer traffic.
    assert root.pointer_updates == root_updates_before
    country = tree.node_for("r0/c0", oid_hex)
    assert len(country.records[oid_hex].forwarding_pointers) == 2


def test_delete_cleans_up_pointer_path(deployment):
    world, tree = deployment
    gos_host = world.host("gos-1", "r0/c0/m0/s0")
    client = GlsClient(world, gos_host, tree)
    wire = ca_wire(world, gos_host)
    oid_hex = run(world, client.register(None, wire), host=gos_host)
    run(world, client.unregister(oid_hex, wire), host=gos_host)
    for path in ("r0/c0/m0/s0", "r0/c0/m0", "r0/c0", "r0", ""):
        node = tree.node_for(path, oid_hex)
        assert oid_hex not in node.records, path


def test_delete_keeps_other_replica_reachable(deployment):
    world, tree = deployment
    gos_a = world.host("gos-a", "r0/c0/m0/s0")
    gos_b = world.host("gos-b", "r1/c0/m0/s0")
    client_a = GlsClient(world, gos_a, tree)
    client_b = GlsClient(world, gos_b, tree)
    wire_a = ca_wire(world, gos_a)
    oid_hex = run(world, client_a.register(None, wire_a), host=gos_a)
    run(world, client_b.register(oid_hex, ca_wire(world, gos_b)), host=gos_b)
    run(world, client_a.unregister(oid_hex, wire_a), host=gos_a)

    user = world.host("user-1", "r0/c0/m0/s1")
    user_client = GlsClient(world, user, tree)
    wires = run(world, user_client.lookup(oid_hex), host=user)
    assert [w["host"] for w in wires] == ["gos-b"]


def test_store_level_places_address_at_intermediate_node(deployment):
    """§3.5: mobile objects store addresses at intermediate nodes."""
    world, tree = deployment
    gos_host = world.host("gos-1", "r0/c0/m0/s0")
    client = GlsClient(world, gos_host, tree)
    wire = ca_wire(world, gos_host)
    oid_hex = run(world, client.register(None, wire,
                                         store_level=int(Level.COUNTRY)),
                  host=gos_host)
    leaf = tree.node_for("r0/c0/m0/s0", oid_hex)
    assert oid_hex not in leaf.records
    country = tree.node_for("r0/c0", oid_hex)
    assert country.records[oid_hex].contact_addresses
    # A client elsewhere in the country still resolves it.
    user = world.host("user-1", "r0/c0/m1/s1")
    user_client = GlsClient(world, user, tree)
    reply = run(world, user_client.lookup_detailed(oid_hex), host=user)
    assert reply["cas"][0]["host"] == "gos-1"
    assert reply["found"] == "r0/c0"


def test_partitioned_root_spreads_records(deployment_seed=33):
    world = make_world(seed=deployment_seed)
    tree = GlsTree(world, partition={"": 4})
    assert len(tree.root_nodes()) == 4
    gos_host = world.host("gos-1", "r0/c0/m0/s0")
    client = GlsClient(world, gos_host, tree)

    def register_many():
        for i in range(40):
            yield from client.register(None, ca_wire(world, gos_host))

    run(world, register_many(), host=gos_host)
    counts = [len(node.records) for node in tree.root_nodes()]
    assert sum(counts) == 40
    assert max(counts) < 40  # actually spread over subnodes
    assert min(counts) > 0


def test_unauthorized_registration_rejected():
    world = make_world(seed=5)
    tree = GlsTree(world, auth_key=b"gdn-secret")
    gos_host = world.host("gos-legit", "r0/c0/m0/s0")
    attacker_host = world.host("attacker", "r0/c0/m0/s1")
    legit = GlsClient(world, gos_host, tree, auth_key=b"gdn-secret")
    no_key = GlsClient(world, attacker_host, tree)
    wrong_key = GlsClient(world, attacker_host, tree, auth_key=b"guess")

    oid_hex = run(world, legit.register(None, ca_wire(world, gos_host)),
                  host=gos_host)
    assert oid_hex is not None

    def attack(client):
        try:
            yield from client.register(None, ca_wire(world, attacker_host))
            return "accepted"
        except GlsError:
            return "rejected"

    assert run(world, attack(no_key), host=attacker_host) == "rejected"
    assert run(world, attack(wrong_key), host=attacker_host) == "rejected"
    leaf = tree.nodes["r0/c0/m0/s1"][0]
    assert leaf.rejected_mutations == 2


def test_node_crash_recovery_restores_records(deployment):
    world, tree = deployment
    gos_host = world.host("gos-1", "r0/c0/m0/s0")
    client = GlsClient(world, gos_host, tree)
    oid_hex = run(world, client.register(None, ca_wire(world, gos_host)),
                  host=gos_host)

    leaf = tree.node_for("r0/c0/m0/s0", oid_hex)
    leaf.host.crash()
    leaf.host.restart()
    run(world, leaf.recover())
    assert oid_hex in leaf.records
    # And lookups work again end-to-end.
    user = world.host("user-1", "r0/c0/m0/s1")
    user_client = GlsClient(world, user, tree)
    reply = run(world, user_client.lookup_detailed(oid_hex), host=user)
    assert reply["cas"][0]["host"] == "gos-1"


def test_allocated_oids_are_unique(deployment):
    world, tree = deployment
    gos_host = world.host("gos-1", "r0/c0/m0/s0")
    client = GlsClient(world, gos_host, tree)

    def register_many():
        oids = []
        for _ in range(20):
            oid_hex = yield from client.register(
                None, ca_wire(world, gos_host))
            oids.append(oid_hex)
        return oids

    oids = run(world, register_many(), host=gos_host)
    assert len(set(oids)) == 20


def test_lookup_latency_proportional_to_distance(deployment):
    """The §3.5 claim behind experiment E2, in miniature."""
    world, tree = deployment
    gos_host = world.host("gos-1", "r0/c0/m0/s0")
    client = GlsClient(world, gos_host, tree)
    oid_hex = run(world, client.register(None, ca_wire(world, gos_host)),
                  host=gos_host)

    def timed_lookup(user):
        user_client = GlsClient(world, user, tree)
        start = world.now
        yield from user_client.lookup_detailed(oid_hex)
        return world.now - start

    near = world.host("user-near", "r0/c0/m0/s0")
    far = world.host("user-far", "r1/c1/m1/s1")
    near_time = run(world, timed_lookup(near), host=near)
    far_time = run(world, timed_lookup(far), host=far)
    assert far_time > near_time * 3
