"""Unit tests for GLS node records."""

from repro.gls.records import NodeRecord


def test_record_starts_empty():
    record = NodeRecord()
    assert record.empty
    assert record.to_wire() == {"cas": [], "ptrs": []}


def test_address_add_remove_idempotent():
    record = NodeRecord()
    wire = {"host": "h", "port": 1, "protocol": "p", "role": "server",
            "impl": "i", "site": "s"}
    assert record.add_address(wire)
    assert not record.add_address(wire)  # duplicate
    assert len(record.contact_addresses) == 1
    assert record.remove_address(wire)
    assert not record.remove_address(wire)
    assert record.empty


def test_pointer_add_remove_idempotent():
    record = NodeRecord()
    assert record.add_pointer("eu/nl")
    assert not record.add_pointer("eu/nl")
    assert record.remove_pointer("eu/nl")
    assert not record.remove_pointer("eu/nl")
    assert record.empty


def test_wire_round_trip():
    record = NodeRecord()
    record.add_address({"host": "h", "port": 1, "protocol": "p",
                        "role": "r", "impl": "i", "site": "s"})
    record.add_pointer("eu")
    record.add_pointer("na")
    restored = NodeRecord.from_wire(record.to_wire())
    assert restored.contact_addresses == record.contact_addresses
    assert restored.forwarding_pointers == record.forwarding_pointers
