"""Property-based tests for GLS tree invariants.

The paper's lookup algorithm rests on one structural invariant: *a node
holds a record for an OID if and only if its parent holds a forwarding
pointer leading to it* (the "tree of forwarding pointers from the
root").  We drive random register/unregister schedules against a live
service and verify, after every settle, that

1. the pointer-path invariant holds at every directory node,
2. every currently registered contact address is resolvable from any
   site, and
3. fully unregistered objects leave no residue anywhere.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ids import ContactAddress, ObjectId
from repro.gls.service import GlsClient
from repro.gls.tree import GlsTree
from repro.sim.topology import Topology
from repro.sim.world import World

SITES = ["r0/c0/m0/s0", "r0/c0/m1/s0", "r0/c1/m0/s0",
         "r1/c0/m0/s0", "r1/c1/m1/s1"]

# A schedule: per object, a subset of sites to register at, then a
# subset of those to unregister.
_schedules = st.lists(
    st.tuples(st.sets(st.sampled_from(SITES), min_size=1, max_size=3),
              st.sets(st.sampled_from(SITES), max_size=3)),
    min_size=1, max_size=5)


def _check_pointer_invariant(tree: GlsTree) -> None:
    for path, subnodes in tree.nodes.items():
        for node in subnodes:
            for oid_hex, record in node.records.items():
                assert not record.empty, \
                    "empty record left at %r" % path
                # Every pointer names a child holding a record.
                for child_path in record.forwarding_pointers:
                    child = tree.node_for(child_path, oid_hex)
                    assert oid_hex in child.records, \
                        "dangling pointer %s -> %s" % (path, child_path)
                # Every non-root record is reachable from its parent.
                if node.parent is not None:
                    parent = tree.node_for(node.parent.domain_path,
                                           oid_hex)
                    assert path in parent.records[oid_hex] \
                        .forwarding_pointers, \
                        "unreachable record at %r" % path


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=_schedules)
def test_random_schedules_preserve_invariants(schedule):
    world = World(topology=Topology.balanced(2, 2, 2, 2), seed=99)
    tree = GlsTree(world)
    clients = {}
    hosts = {}
    for index, site in enumerate(SITES):
        host = world.host("gos-%d" % index, site)
        hosts[site] = host
        clients[site] = GlsClient(world, host, tree)

    def wire(site):
        host = hosts[site]
        return ContactAddress(host.name, 7100, "client_server",
                              role="server", impl_id="x",
                              site_path=site).to_wire()

    live = {}  # oid -> set of registered sites

    def driver():
        for register_at, unregister_at in schedule:
            oid_hex = None
            for site in sorted(register_at):
                oid_hex = yield from clients[site].register(
                    oid_hex, wire(site))
            live[oid_hex] = set(register_at)
            for site in sorted(unregister_at & register_at):
                yield from clients[site].unregister(oid_hex, wire(site))
                live[oid_hex].discard(site)

    world.run_until(world.sim.process(driver()), limit=1e9)
    _check_pointer_invariant(tree)

    # Every surviving registration resolves from everywhere; fully
    # removed objects resolve nowhere.
    prober_host = world.host("prober", "r1/c0/m1/s0")
    prober = GlsClient(world, prober_host, tree)

    def probe():
        outcomes = {}
        for oid_hex, sites in live.items():
            reply = yield from prober.lookup_detailed(oid_hex)
            outcomes[oid_hex] = {w["site"] for w in reply["cas"]}
        return outcomes

    outcomes = world.run_until(prober_host.spawn(probe()), limit=1e9)
    for oid_hex, sites in live.items():
        if sites:
            assert outcomes[oid_hex], "live object unresolvable"
            assert outcomes[oid_hex].issubset(sites | set())
        else:
            assert not outcomes[oid_hex], "ghost object resolvable"
            # And no residue in any node.
            for subnodes in tree.nodes.values():
                for node in subnodes:
                    assert oid_hex not in node.records
