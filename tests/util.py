"""Shared helpers for the test suite: fakes and sample DSO semantics."""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional

from repro.core.idl import mutating, read_only
from repro.core.ids import ObjectId
from repro.core.subobjects import SemanticsSubobject
from repro.sim.topology import Topology


class FakeLocationService:
    """In-memory stand-in for the Globe Location Service.

    Implements the interface the runtime and object servers consume
    (``lookup`` / ``register`` / ``unregister`` as generators), keeping
    contact addresses in insertion order unless a ``sort_site`` is
    given, in which case lookups are nearest-first like the real GLS.
    """

    def __init__(self, world=None, sort_site=None):
        self.world = world
        self.sort_site = sort_site
        self.records: Dict[str, List[dict]] = {}
        self._counter = itertools.count(1)

    def register(self, oid_hex: Optional[str], ca_wire: dict
                 ) -> Generator[object, object, str]:
        if oid_hex is None:
            oid_hex = ObjectId.from_seed(
                "fake-gls-%d" % next(self._counter)).hex
        existing = self.records.setdefault(oid_hex, [])
        if ca_wire not in existing:
            existing.append(ca_wire)
        return oid_hex
        yield  # pragma: no cover - no simulated delay in the fake

    def unregister(self, oid_hex: str, ca_wire: dict) -> Generator:
        addresses = self.records.get(oid_hex, [])
        if ca_wire in addresses:
            addresses.remove(ca_wire)
        return None
        yield  # pragma: no cover

    def lookup(self, oid_hex: str) -> Generator[object, object, List[dict]]:
        wires = list(self.records.get(oid_hex, []))
        if self.sort_site is not None and self.world is not None:
            def distance(wire):
                site = self.world.topology.site(wire["site"])
                return Topology.separation(self.sort_site, site)
            wires.sort(key=distance)
        return wires
        yield  # pragma: no cover


class KvStore(SemanticsSubobject):
    """A small key/value semantics subobject used across the tests."""

    def __init__(self):
        self.data: Dict[str, str] = {}

    @mutating
    def put(self, key: str, value: str) -> None:
        self.data[key] = value

    @mutating
    def delete(self, key: str) -> bool:
        return self.data.pop(key, None) is not None

    @read_only
    def get(self, key: str) -> Optional[str]:
        return self.data.get(key)

    @read_only
    def size(self) -> int:
        return len(self.data)

    @read_only
    def keys(self) -> List[str]:
        return sorted(self.data)

    def snapshot_state(self) -> dict:
        return {"data": dict(self.data)}

    def restore_state(self, state: dict) -> None:
        self.data = dict(state["data"])


class GlobeBed:
    """A ready-made world with repository, fake GLS and object servers.

    Used by core/GOS integration tests; the full-stack deployments in
    ``repro.gdn.deployment`` replace the fakes with real services.
    """

    def __init__(self, topology=None, seed=5):
        from repro.core.repository import (Implementation,
                                           ImplementationRepository)
        from repro.sim.world import World

        self.world = World(topology=topology or Topology.balanced(2, 2, 2, 2),
                           seed=seed)
        self.gls = FakeLocationService(self.world)
        self.repository = ImplementationRepository(self.world)
        self.repository.register(Implementation("test.kv", KvStore,
                                                code_size=10_000))
        self.disk = None

    def register_counter(self):
        from repro.core.repository import Implementation
        self.repository.register(Implementation("test.counter", Counter,
                                                code_size=5_000))

    def gos(self, name, site, port=7100, **kwargs):
        from repro.gos.persistence import DiskStore
        from repro.gos.server import GlobeObjectServer

        if self.disk is None:
            self.disk = DiskStore()
        host = self.world.host(name, site)
        server = GlobeObjectServer(self.world, host, self.repository,
                                   self.gls, port=port, disk=self.disk,
                                   **kwargs)
        server.start()
        return server

    def runtime(self, host_name, site):
        from repro.core.runtime import Runtime

        host = self.world.host(host_name, site)
        return Runtime(self.world, host, self.gls, self.repository)

    def run(self, generator, host=None, limit=1e6):
        """Run a generator as a process and return its value."""
        process = (host.spawn(generator) if host is not None
                   else self.world.sim.process(generator))
        return self.world.run_until(process, limit=limit)


class Counter(SemanticsSubobject):
    """A counter whose state is tiny but whose ops are meaningful."""

    def __init__(self):
        self.count = 0

    @mutating
    def increment(self, by: int = 1) -> int:
        self.count += by
        return self.count

    @read_only
    def value(self) -> int:
        return self.count

    def snapshot_state(self) -> dict:
        return {"count": self.count}

    def restore_state(self, state: dict) -> None:
        self.count = state["count"]
