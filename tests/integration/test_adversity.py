"""Integration tests under network failures and active adversaries.

Covers the §6.1 availability threats (host/network failures) and the
§6.3 residual risk analysis: "attackers can only prevent resolution of
object names … or cause an object name to resolve to an invalid object
identifier or to one belonging to another object" — misdirection, not
forgery.
"""

import pytest

from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ReplicationScenario
from repro.gns.dns.records import ResourceRecord, RRType
from repro.gns.dns.resolver import CachingResolver
from repro.gns.dns.server import DNS_PORT, AuthoritativeServer
from repro.gns.dns.zone import Zone
from repro.gns.gns import GlobeNameService
from repro.sim.failures import FailureInjector
from repro.sim.topology import Topology


@pytest.fixture
def gdn():
    deployment = GdnDeployment(
        topology=Topology.balanced(regions=2, countries=2, cities=1,
                                   sites=2),
        seed=404, secure=True)
    deployment.standard_fleet(gos_per_region=1)
    deployment.initial_sync()
    moderator = deployment.add_moderator("mod", "r0/c0/m0/s1")

    def publish():
        oid = yield from moderator.create_package(
            "/apps/science/Octave", {"README": b"gnu octave"},
            ReplicationScenario.master_slave("gos-r0-0", ["gos-r1-0"],
                                             cache_ttl=120.0))
        return oid

    oid = deployment.run(publish(), host=moderator.host)
    deployment.settle(5.0)
    return deployment, oid


def test_partitioned_region_keeps_serving_reads(gdn):
    """Replication is the §6.1 availability answer: a region cut off
    from the rest of the world still serves reads from its replica."""
    deployment, _oid = gdn
    browser = deployment.add_browser("user-r1", "r1/c1/m0/s1")

    def warm():
        response = yield from browser.download("/apps/science/Octave",
                                               "README")
        return response

    assert deployment.run(warm(), host=browser.host).ok

    # Cut region r1 off from the world.
    region = deployment.world.topology.domain("r1")
    deployment.world.network.partition_domain(region)

    def read_during_partition():
        response = yield from browser.download("/apps/science/Octave",
                                               "README")
        return response

    response = deployment.run(read_during_partition(), host=browser.host)
    assert response.ok
    assert response.body == b"gnu octave"
    deployment.world.network.heal_domain(region)


def test_writes_fail_inside_partition_then_recover(gdn):
    """The master is outside the partition: writes cannot commit, and
    succeed again after the partition heals."""
    deployment, oid = gdn
    maintainer = deployment.add_maintainer("mnt", "r1/c0/m0/s1",
                                           maintains=[oid.hex])
    region = deployment.world.topology.domain("r1")
    deployment.world.network.partition_domain(region)

    from repro.gdn.maintainer import MaintenanceError

    def write_during_partition():
        try:
            yield from maintainer.update_contents(
                "/apps/science/Octave", add_files={"NEWS": b"trapped"})
            return "accepted"
        except (MaintenanceError, Exception):  # noqa: BLE001
            return "failed"

    assert deployment.run(write_during_partition(),
                          host=maintainer.host) == "failed"
    deployment.world.network.heal_domain(region)

    def write_after_heal():
        yield from maintainer.update_contents(
            "/apps/science/Octave", add_files={"NEWS": b"healed"})

    deployment.run(write_after_heal(), host=maintainer.host)
    master = deployment.object_servers["gos-r0-0"]
    assert (master.replicas[oid.hex].semantics.getFileContents("NEWS")
            == b"healed")


def test_scheduled_crash_restart_with_injector(gdn):
    deployment, oid = gdn
    slave = deployment.object_servers["gos-r1-0"]
    injector = FailureInjector(deployment.world)
    start = deployment.world.now
    injector.crash_restart(slave.host, crash_at=start + 5.0,
                           restart_at=start + 10.0,
                           recover=lambda: deployment.recover_gos(
                               "gos-r1-0"))
    deployment.world.run(until=start + 20.0)
    assert slave.host.up
    assert oid.hex in slave.replicas


def test_dns_spoofing_misdirects_but_cannot_forge(gdn):
    """§6.3: a spoofed resolver can break resolution or point a name at
    another object, but TSIG/TLS/GLS auth keep contents unforgeable."""
    deployment, oid = gdn
    world = deployment.world

    # The attacker runs a fake DNS hierarchy claiming the GDN zone and
    # answers with an OID of their choosing (here: a nonexistent one).
    evil_host = world.host("evil-dns", "r1/c0/m0/s1")
    evil = AuthoritativeServer(world, evil_host,
                               require_tsig_for_updates=False)
    evil_root = Zone("", primary_host="evil-dns")
    evil_root.add_record(ResourceRecord(
        "octave.science.apps." + deployment.zone, RRType.TXT, 300,
        "globe-oid=" + "d" * 40))
    evil.add_primary_zone(evil_root)
    evil.start()

    # A victim whose resolver was misconfigured (spoofed) to the
    # attacker's server.
    victim_host = world.host("victim", "r1/c1/m0/s0")
    spoofed_resolver = CachingResolver(world, victim_host,
                                       [("evil-dns", DNS_PORT)])
    gns = GlobeNameService(world, victim_host, spoofed_resolver,
                           zone=deployment.zone)
    runtime = deployment._runtime(victim_host, gdn_host=False)

    def attempt():
        from repro.core.ids import ObjectId
        from repro.core.runtime import BindError
        oid_hex = yield from gns.resolve("/apps/science/Octave")
        try:
            yield from runtime.bind(ObjectId.from_hex(oid_hex))
        except BindError:
            return ("misdirected-but-unbound", oid_hex)
        return ("bound", oid_hex)

    outcome, spoofed_oid = deployment.run(attempt(), host=victim_host)
    # The name resolved to the attacker's OID (misdirection works)...
    assert spoofed_oid == "d" * 40
    # ...but the GLS has no (authenticated) registration for it, so the
    # victim gets nothing — and certainly not forged package contents.
    assert outcome == "misdirected-but-unbound"
