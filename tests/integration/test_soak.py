"""Soak test: a populated GDN under a mixed workload, end to end.

One deployment, a corpus of packages with advisor-assigned scenarios,
and a workload mixing downloads from every region, searches, moderator
updates, and a mid-run replica crash+recovery.  Asserts global
invariants at the end: every request got a well-formed answer, all
replicas converged, and traffic/metric accounting is consistent.
"""

import random

import pytest

from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ObjectUsage, ScenarioAdvisor
from repro.sim.topology import Topology
from repro.workloads.packages import generate_corpus
from repro.workloads.population import ClientPopulation


@pytest.mark.slow
def test_gdn_soak():
    topology = Topology.balanced(regions=3, countries=2, cities=1, sites=2)
    gdn = GdnDeployment(topology=topology, seed=777, secure=False)
    gdn.standard_fleet(gos_per_region=1)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")

    rng = random.Random(777)
    corpus = generate_corpus(10, rng, mean_file_size=20_000)
    population = ClientPopulation(topology, len(corpus),
                                  random.Random(778), alpha=1.0)
    stream = population.generate(150)
    advisor = ScenarioAdvisor(gdn.gos_by_region(), popularity_threshold=8)

    def publish():
        for index, spec in enumerate(corpus):
            usage = ObjectUsage(stream.reads_by_region(index), writes=1,
                                size=spec.total_size)
            yield from moderator.create_package(
                spec.name, spec.materialize(), advisor.recommend(usage))

    gdn.run(publish(), host=moderator.host)
    gdn.settle(10.0)

    outcomes = {"ok": 0, "bad": 0}
    browsers = {}

    def browser_for(site_path):
        if site_path not in browsers:
            browsers[site_path] = gdn.add_browser(
                "soak-%s" % site_path.replace("/", "-"), site_path)
        return browsers[site_path]

    def workload():
        for count, request in enumerate(stream):
            browser = browser_for(request.site.path)
            spec = corpus[request.object_index]
            if count % 17 == 3:
                response = yield from browser.get(
                    "/gdn-search?category=%s" % spec.name.split("/")[2])
            else:
                response = yield from browser.download(spec.name,
                                                       spec.largest_file)
            outcomes["ok" if response.ok else "bad"] += 1
            if count == 60:
                # Mid-run: crash and recover one replica host.
                victim = gdn.object_servers["gos-r1-0"]
                victim.host.crash()
                yield gdn.world.sim.timeout(2.0)
                gdn.recover_gos("gos-r1-0")
            if count % 29 == 11:
                yield from moderator.update_package(
                    spec.name,
                    attributes={"touched": "round%d" % count})

    gdn.run(workload(), limit=1e9)
    gdn.settle(15.0)

    # Every request answered; failures only possible in the crash
    # window (the crashed host served one region's access point).
    assert outcomes["ok"] + outcomes["bad"] == len(stream)
    assert outcomes["ok"] >= len(stream) * 0.9

    # All master/slave pairs converged after recovery + settling.
    for name, gos in gdn.object_servers.items():
        for oid_hex, replica in gos.replicas.items():
            if replica.role != "slave":
                continue
            master_gos = next(
                g for g in gdn.object_servers.values()
                if oid_hex in g.replicas
                and g.replicas[oid_hex].role == "master")
            master_version = master_gos.replicas[oid_hex] \
                .replication.version
            assert replica.replication.version == master_version, \
                "%s lagging on %s" % (name, oid_hex[:8])

    # Accounting sanity: traffic was metered at every level used, and
    # HTTPDs served what browsers received.
    meter = gdn.world.network.meter
    assert meter.total_bytes > 0
    assert meter.total_messages > 0
    served = sum(h.requests_served for h in gdn.httpds)
    assert served >= len(stream)
    received = sum(b.bytes_received for b in browsers.values())
    assert received > 0
