"""Flash-crowd trace replay through a full GDN (ISSUE 8 pins).

Two guarantees around the GLS-lookup cache:

* **Cache off is the reference.**  A deployment built with
  ``gls_cache=None`` (the default) must replay the committed
  ``flash_crowd_small.jsonl`` trace byte-identically run over run —
  the :class:`LoadStats` summary, the latency histogram's canonical
  state, and the kernel event count are pinned, so a cache-layer
  change can never silently perturb the uncached request path.
* **Cache on only removes upstream lookups.**  With the cache enabled
  the same replay serves the same requests (identical ok/failed
  split) while the directory tree sees strictly less traffic.
* **Backoff desynchronizes retries.**  Replaying through a lossy
  window (ISSUE 9), the jittered :class:`ExponentialBackoff` GLS
  retry policy serves no fewer requests than the legacy fixed-beat
  discipline while producing strictly fewer same-instant (10 ms
  bucket) retry collisions across the HTTPDs' GLS clients.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ReplicationScenario
from repro.sim.retry import ExponentialBackoff, FixedRetry
from repro.sim.topology import Level, Topology
from repro.workloads.loadgen import LoadStats
from repro.workloads.packages import synthetic_file
from repro.workloads.scenario import TraceScenario, bundled_trace

#: The trace draws from 6 objects over a 2x2x1x2 topology (see
#: ``src/repro/workloads/traces/README.md``).
OBJECTS = 6
_FILE = "payload.bin"


def _replay(gls_cache, retry_policy=None, loss=None):
    """Replay the bundled flash-crowd trace; return the run
    fingerprint, the deployment (for cache inspection), and the
    merged GLS retry-send timestamps of the HTTPDs' UDP clients.

    ``retry_policy`` is handed to the deployment (None = the legacy
    fixed discipline); ``loss=(probability, start, end)`` opens a
    datagram-loss window at those offsets into the replay."""
    topology = Topology.balanced(regions=2, countries=2, cities=1,
                                 sites=2)
    gdn = GdnDeployment(topology=topology, seed=19, secure=False,
                        gls_cache=gls_cache, retry_policy=retry_policy)
    gdn.add_gos("gos-0", "r0/c0/m0/s0")
    gdn.add_gos("gos-1", "r1/c0/m0/s0")
    # Bindings go stale every second, so the replay keeps exercising
    # the GLS-lookup path instead of resolving each object once.
    gdn.add_httpd("httpd-0", colocate_with="gos-0", binding_ttl=1.0)
    gdn.add_httpd("httpd-1", colocate_with="gos-1", binding_ttl=1.0)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")
    names = ["/apps/flash/Pkg%d" % index for index in range(OBJECTS)]

    def publish():
        for index, name in enumerate(names):
            yield from moderator.create_package(
                name, {_FILE: synthetic_file("flash-%d" % index, 8_000)},
                ReplicationScenario.master_slave("gos-0", ["gos-1"],
                                                 cache_ttl=60.0))

    gdn.run(publish(), host=moderator.host)
    gdn.settle(5.0)
    browser_for = gdn.browser_pool("replay")

    # Instrument every access point's GLS stub: retry send times land
    # in these logs (plain list appends — no simulation events, so the
    # byte-identical pins are unaffected).
    retry_logs = []
    for httpd in gdn.httpds:
        client = httpd.runtime.location_service._client
        client.retry_log = []
        retry_logs.append(client.retry_log)
    if loss is not None:
        probability, start, end = loss
        base = gdn.world.now
        from repro.sim.failures import FailureInjector
        injector = FailureInjector(gdn.world)
        # Same-site datagrams only: GLS stub -> leaf directory node
        # traffic dies, while browser HTTP (reliable) and cross-site
        # DNS keep working — the outage isolates the retry path under
        # test.
        injector.loss_window(Level.SITE, probability, base + start,
                             base + end)

    def one_request(arrival):
        name = names[arrival.rank]
        if arrival.kind == "read":
            response = yield from browser_for(arrival.site).download(
                name, _FILE)
        else:
            # The trace's writes replay as listing fetches: still a
            # GET through bind, just against the package page.
            response = yield from browser_for(arrival.site).get(
                "/gdn" + name)
        return response.ok

    scenario = TraceScenario.from_file(
        bundled_trace("flash_crowd_small.jsonl"),
        topology=gdn.world.topology)
    stats = LoadStats(registry=gdn.world.metrics, prefix="replay")
    gdn.run(scenario.drive(gdn.world.sim, one_request,
                           rng=gdn.world.rng_for("flash-replay"),
                           stats=stats), limit=1e9)
    browser_for.close()
    fingerprint = (stats.summary(), stats.latency.state(),
                   gdn.world.sim.events_processed)
    retries = sorted(t for log in retry_logs for t in log)
    return fingerprint, gdn, retries


def _collisions(times, bucket=0.010):
    """Retry sends sharing a 10 ms bucket with an earlier one — the
    synchronized-wave measure (0 = perfectly spread)."""
    counts = Counter(math.floor(t / bucket) for t in times)
    return sum(n - 1 for n in counts.values() if n > 1)


def test_cache_disabled_replay_is_byte_identical():
    first, gdn, _retries = _replay(None)
    assert not gdn.lookup_caches
    second, _gdn, _retries2 = _replay(False)
    assert first == second
    summary = first[0]
    assert summary["issued"] == 140
    assert summary["ok"] == 140
    assert summary["failed"] == 0


def test_cache_on_serves_identically_with_fewer_lookups():
    baseline, gdn_off, _r0 = _replay(None)
    cached, gdn_on, _r1 = _replay(True)
    assert cached[0]["issued"] == baseline[0]["issued"] == 140
    assert cached[0]["ok"] == baseline[0]["ok"]
    assert cached[0]["failed"] == baseline[0]["failed"]
    # The whole point: the directory tree absorbs strictly less
    # request traffic once the serving tier coalesces and caches.
    assert gdn_on.gls.total_requests() < gdn_off.gls.total_requests()
    hits = sum(cache.hits for cache in gdn_on.lookup_caches.values())
    assert hits > 0


#: ISSUE 9's partition window: every same-site datagram vanishes for
#: replay seconds 4.5-9.5 — a total GLS-stub outage covering the
#: trace's arrival burst, so the burst's lookups ride out several
#: retry rounds before the network heals.  The outage is shorter than
#: either policy's retry horizon, so no request is lost.
LOSS = (1.0, 4.5, 9.5)


def test_backoff_policy_desynchronizes_gls_retries_under_loss():
    """Flash-crowd arrivals cluster within milliseconds; with the
    fixed-beat legacy discipline the calls they trigger stay
    phase-locked on *every* retry round of the outage, while jittered
    backoff decorrelates them from the second attempt on."""
    legacy, _gdn0, legacy_retries = _replay(
        None, retry_policy=FixedRetry(timeout=1.0, retries=8),
        loss=LOSS)
    jittered, _gdn1, jittered_retries = _replay(
        None, retry_policy=ExponentialBackoff(timeout=1.0, retries=8,
                                              base=0.25, multiplier=2.0,
                                              max_delay=2.0, jitter=0.5),
        loss=LOSS)
    # The outage really forced GLS retries in both arms.
    assert legacy_retries and jittered_retries
    # No LoadStats regression: the new policy serves no fewer requests.
    assert jittered[0]["issued"] == legacy[0]["issued"] == 140
    assert jittered[0]["ok"] >= legacy[0]["ok"]
    # Backing off also retransmits less overall ...
    assert len(jittered_retries) < len(legacy_retries)
    # ... and, the point of the jitter: strictly fewer synchronized
    # same-instant retry sends during the outage.
    assert _collisions(jittered_retries) < _collisions(legacy_retries)
