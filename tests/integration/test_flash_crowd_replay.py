"""Flash-crowd trace replay through a full GDN (ISSUE 8 pins).

Two guarantees around the GLS-lookup cache:

* **Cache off is the reference.**  A deployment built with
  ``gls_cache=None`` (the default) must replay the committed
  ``flash_crowd_small.jsonl`` trace byte-identically run over run —
  the :class:`LoadStats` summary, the latency histogram's canonical
  state, and the kernel event count are pinned, so a cache-layer
  change can never silently perturb the uncached request path.
* **Cache on only removes upstream lookups.**  With the cache enabled
  the same replay serves the same requests (identical ok/failed
  split) while the directory tree sees strictly less traffic.
"""

from __future__ import annotations

from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ReplicationScenario
from repro.sim.topology import Topology
from repro.workloads.loadgen import LoadStats
from repro.workloads.packages import synthetic_file
from repro.workloads.scenario import TraceScenario, bundled_trace

#: The trace draws from 6 objects over a 2x2x1x2 topology (see
#: ``src/repro/workloads/traces/README.md``).
OBJECTS = 6
_FILE = "payload.bin"


def _replay(gls_cache):
    """Replay the bundled flash-crowd trace; return the run
    fingerprint plus the deployment for cache inspection."""
    topology = Topology.balanced(regions=2, countries=2, cities=1,
                                 sites=2)
    gdn = GdnDeployment(topology=topology, seed=19, secure=False,
                        gls_cache=gls_cache)
    gdn.add_gos("gos-0", "r0/c0/m0/s0")
    gdn.add_gos("gos-1", "r1/c0/m0/s0")
    # Bindings go stale every second, so the replay keeps exercising
    # the GLS-lookup path instead of resolving each object once.
    gdn.add_httpd("httpd-0", colocate_with="gos-0", binding_ttl=1.0)
    gdn.add_httpd("httpd-1", colocate_with="gos-1", binding_ttl=1.0)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")
    names = ["/apps/flash/Pkg%d" % index for index in range(OBJECTS)]

    def publish():
        for index, name in enumerate(names):
            yield from moderator.create_package(
                name, {_FILE: synthetic_file("flash-%d" % index, 8_000)},
                ReplicationScenario.master_slave("gos-0", ["gos-1"],
                                                 cache_ttl=60.0))

    gdn.run(publish(), host=moderator.host)
    gdn.settle(5.0)
    browser_for = gdn.browser_pool("replay")

    def one_request(arrival):
        name = names[arrival.rank]
        if arrival.kind == "read":
            response = yield from browser_for(arrival.site).download(
                name, _FILE)
        else:
            # The trace's writes replay as listing fetches: still a
            # GET through bind, just against the package page.
            response = yield from browser_for(arrival.site).get(
                "/gdn" + name)
        return response.ok

    scenario = TraceScenario.from_file(
        bundled_trace("flash_crowd_small.jsonl"),
        topology=gdn.world.topology)
    stats = LoadStats(registry=gdn.world.metrics, prefix="replay")
    gdn.run(scenario.drive(gdn.world.sim, one_request,
                           rng=gdn.world.rng_for("flash-replay"),
                           stats=stats), limit=1e9)
    browser_for.close()
    fingerprint = (stats.summary(), stats.latency.state(),
                   gdn.world.sim.events_processed)
    return fingerprint, gdn


def test_cache_disabled_replay_is_byte_identical():
    first, gdn = _replay(None)
    assert not gdn.lookup_caches
    second, _gdn = _replay(False)
    assert first == second
    summary = first[0]
    assert summary["issued"] == 140
    assert summary["ok"] == 140
    assert summary["failed"] == 0


def test_cache_on_serves_identically_with_fewer_lookups():
    baseline, gdn_off = _replay(None)
    cached, gdn_on = _replay(True)
    assert cached[0]["issued"] == baseline[0]["issued"] == 140
    assert cached[0]["ok"] == baseline[0]["ok"]
    assert cached[0]["failed"] == baseline[0]["failed"]
    # The whole point: the directory tree absorbs strictly less
    # request traffic once the serving tier coalesces and caches.
    assert gdn_on.gls.total_requests() < gdn_off.gls.total_requests()
    hits = sum(cache.hits for cache in gdn_on.lookup_caches.values())
    assert hits > 0
