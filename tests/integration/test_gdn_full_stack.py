"""Full-stack integration: the whole GDN as in Figure 3.

Every test here builds a complete deployment — DNS + GNS, GLS tree,
object servers, HTTPDs, naming authority, moderator tools, browsers —
and exercises the user-visible flows of the paper: moderators add and
update packages, users download them through their nearest GDN-HTTPD,
replicas keep working through failures, and unauthorized parties are
turned away.
"""

import pytest

from repro.gdn.deployment import GdnDeployment
from repro.gdn.moderator import ModerationError
from repro.gdn.scenario import ReplicationScenario
from repro.sim.topology import Topology


GIMP_FILES = {
    "README": b"The GIMP, the GNU Image Manipulation Program.",
    "bin/gimp": b"\x7fELF" + b"\x01" * 5000,
    "share/palettes/default.gpl": b"GIMP palette" + b"\x02" * 800,
}


@pytest.fixture(scope="module")
def gdn():
    deployment = GdnDeployment(
        topology=Topology.balanced(regions=2, countries=2, cities=1,
                                   sites=2),
        seed=101, secure=True)
    deployment.standard_fleet(gos_per_region=1)
    deployment.initial_sync()
    moderator = deployment.add_moderator("mod-alice", "r0/c0/m0/s1")
    scenario = ReplicationScenario.master_slave(
        "gos-r0-0", ["gos-r1-0"], cache_ttl=300.0)

    def publish():
        oid = yield from moderator.create_package("/apps/graphics/Gimp",
                                                  GIMP_FILES, scenario)
        return oid

    oid = deployment.run(publish(), host=moderator.host)
    deployment.settle(5.0)
    return deployment, moderator, oid


def test_package_resolvable_through_gns(gdn):
    deployment, _moderator, oid = gdn
    resolver_host = deployment.world.host("checker", "r1/c1/m0/s0")
    gns = deployment._name_service(resolver_host)

    def resolve():
        oid_hex = yield from gns.resolve("/apps/graphics/Gimp")
        return oid_hex

    assert deployment.run(resolve(), host=resolver_host) == oid.hex


def test_replicas_exist_on_both_regions(gdn):
    deployment, _moderator, oid = gdn
    master = deployment.object_servers["gos-r0-0"]
    slave = deployment.object_servers["gos-r1-0"]
    assert oid.hex in master.replicas
    assert oid.hex in slave.replicas
    assert master.replicas[oid.hex].role == "master"
    assert slave.replicas[oid.hex].role == "slave"
    # The slave received the files through join/state-push.
    assert (slave.replicas[oid.hex].semantics.getFileContents("README")
            == GIMP_FILES["README"])


def test_browser_downloads_package_page_and_file(gdn):
    deployment, _moderator, _oid = gdn
    browser = deployment.add_browser("user-1", "r1/c0/m0/s1")

    def surf():
        page = yield from browser.get("/gdn/apps/graphics/Gimp")
        blob = yield from browser.download("/apps/graphics/Gimp",
                                           "bin/gimp")
        return page, blob

    page, blob = deployment.run(surf(), host=browser.host)
    assert page.ok
    assert "bin/gimp" in page.body
    assert blob.ok
    assert blob.body == GIMP_FILES["bin/gimp"]


def test_browser_uses_nearest_access_point(gdn):
    deployment, _moderator, _oid = gdn
    browser = deployment.add_browser("user-near-r0", "r0/c1/m0/s0")
    assert browser.access_point.host.site.path.startswith("r0")


def test_missing_package_is_404(gdn):
    deployment, _moderator, _oid = gdn
    browser = deployment.add_browser("user-404", "r0/c0/m0/s0")

    def surf():
        response = yield from browser.get("/gdn/apps/NoSuchPackage")
        return response

    response = deployment.run(surf(), host=browser.host)
    assert response.status == 404


def test_missing_file_is_404(gdn):
    deployment, _moderator, _oid = gdn
    browser = deployment.add_browser("user-nofile", "r0/c0/m0/s0")

    def surf():
        response = yield from browser.download("/apps/graphics/Gimp",
                                               "no/such/file")
        return response

    response = deployment.run(surf(), host=browser.host)
    assert response.status == 404


def test_moderator_updates_propagate(gdn):
    deployment, moderator, oid = gdn

    def update():
        yield from moderator.update_package(
            "/apps/graphics/Gimp",
            add_files={"NEWS": b"version 1.2 released"})

    deployment.run(update(), host=moderator.host)
    deployment.settle(5.0)
    slave = deployment.object_servers["gos-r1-0"]
    assert (slave.replicas[oid.hex].semantics.getFileContents("NEWS")
            == b"version 1.2 released")


def test_download_near_slave_stays_in_region(gdn):
    deployment, _moderator, _oid = gdn
    meter = deployment.world.network.meter
    browser = deployment.add_browser("user-local", "r1/c0/m0/s0")

    def warm_then_measure():
        # Warm the HTTPD cache (may cross regions for the first pull).
        yield from browser.download("/apps/graphics/Gimp", "README")
        before = meter.wide_area_bytes()
        for _ in range(5):
            yield from browser.download("/apps/graphics/Gimp", "README")
        return meter.wide_area_bytes() - before

    wan_bytes = deployment.run(warm_then_measure(), host=browser.host)
    # Repeat downloads are served from the region: no new WAN traffic.
    assert wan_bytes == 0


def test_unauthorized_tool_cannot_create_packages(gdn):
    deployment, _moderator, _oid = gdn
    # A tool whose certificate carries no moderator role.
    impostor = deployment.add_moderator("impostor", "r0/c0/m0/s0")
    deployment.registry.revoke("impostor",
                               __import__("repro.security.acl",
                                          fromlist=["Role"]).Role.MODERATOR)

    def attempt():
        try:
            yield from impostor.create_package(
                "/apps/Trojan", {"payload": b"evil"},
                ReplicationScenario.single_server("gos-r0-0"))
        except ModerationError as exc:
            return str(exc)

    outcome = deployment.run(attempt(), host=impostor.host)
    assert "NotAuthorized" in outcome


def test_anonymous_user_cannot_write_through_gos(gdn):
    deployment, _moderator, oid = gdn
    from repro.core.ids import ObjectId
    from repro.core.subobjects import RemoteInvocationError

    user_host = deployment.world.host("writer-user", "r0/c0/m0/s0")
    runtime = deployment._runtime(user_host, gdn_host=False)

    def attempt():
        lr = yield from runtime.bind(ObjectId.from_hex(oid.hex))
        try:
            yield from lr.invoke("addFile", {"path": "evil",
                                             "data": b"trojan"})
        except Exception as exc:  # noqa: BLE001
            return type(exc).__name__
        return "accepted"

    outcome = deployment.run(attempt(), host=user_host)
    assert outcome != "accepted"


def test_gos_crash_recovery_keeps_package_available(gdn):
    deployment, _moderator, oid = gdn
    slave = deployment.object_servers["gos-r1-0"]
    slave.host.crash()
    deployment.recover_gos("gos-r1-0")
    assert oid.hex in slave.replicas
    # And a user in that region can still download.
    browser = deployment.add_browser("user-after-crash", "r1/c1/m0/s1")

    def surf():
        response = yield from browser.download("/apps/graphics/Gimp",
                                               "README")
        return response

    response = deployment.run(surf(), host=browser.host)
    assert response.ok


def test_package_removal_cleans_name_and_replicas(gdn):
    deployment, moderator, _oid = gdn
    scenario = ReplicationScenario.single_server("gos-r0-0")

    def lifecycle():
        yield from moderator.create_package("/apps/Temporary",
                                            {"f": b"x"}, scenario)
        yield from moderator.remove_package("/apps/Temporary")

    deployment.run(lifecycle(), host=moderator.host)
    browser = deployment.add_browser("user-gone", "r0/c0/m0/s0")

    def surf():
        response = yield from browser.get("/gdn/apps/Temporary")
        return response

    response = deployment.run(surf(), host=browser.host)
    assert response.status == 404
