"""Full-stack tests for the §2 maintainer role and §8 search/versioning."""

import pytest

from repro.gdn.deployment import GdnDeployment
from repro.gdn.maintainer import MaintenanceError
from repro.gdn.scenario import ReplicationScenario
from repro.sim.topology import Topology


@pytest.fixture(scope="module")
def gdn():
    deployment = GdnDeployment(
        topology=Topology.balanced(regions=2, countries=2, cities=1,
                                   sites=2),
        seed=202, secure=True)
    deployment.standard_fleet(gos_per_region=1)
    deployment.initial_sync()
    moderator = deployment.add_moderator("mod", "r0/c0/m0/s1")

    def publish():
        gimp = yield from moderator.create_package(
            "/apps/graphics/Gimp", {"README": b"gimp v1"},
            ReplicationScenario.master_slave("gos-r0-0", ["gos-r1-0"]),
            attributes={"license": "gpl"})
        tetex = yield from moderator.create_package(
            "/apps/typesetting/teTeX", {"README": b"tetex v1"},
            ReplicationScenario.single_server("gos-r0-0"),
            attributes={"license": "lppl"})
        return gimp, tetex

    gimp_oid, tetex_oid = deployment.run(publish(), host=moderator.host)
    deployment.settle(5.0)
    return deployment, moderator, gimp_oid, tetex_oid


def test_maintainer_can_update_own_package(gdn):
    deployment, _moderator, gimp_oid, _tetex = gdn
    maintainer = deployment.add_maintainer("wilber", "r1/c0/m0/s1",
                                           maintains=[gimp_oid.hex])

    def update():
        version = yield from maintainer.update_contents(
            "/apps/graphics/Gimp", add_files={"NEWS": b"bugfixes"})
        return version

    version = deployment.run(update(), host=maintainer.host)
    assert version > 0
    deployment.settle(5.0)
    master = deployment.object_servers["gos-r0-0"]
    assert (master.replicas[gimp_oid.hex].semantics
            .getFileContents("NEWS") == b"bugfixes")


def test_maintainer_cannot_touch_other_packages(gdn):
    deployment, _moderator, gimp_oid, _tetex = gdn
    maintainer = deployment.add_maintainer("wilber2", "r1/c0/m0/s1",
                                           maintains=[gimp_oid.hex])

    def attempt():
        try:
            yield from maintainer.update_contents(
                "/apps/typesetting/teTeX", add_files={"evil": b"x"})
        except MaintenanceError:
            return "refused"
        return "accepted"

    assert deployment.run(attempt(), host=maintainer.host) == "refused"
    tetex_gos = deployment.object_servers["gos-r0-0"]
    _tetex_oid = gdn[3]
    semantics = tetex_gos.replicas[_tetex_oid.hex].semantics
    assert "evil" not in [e["path"] for e in semantics.listContents()]


def test_grant_extends_maintainer_rights(gdn):
    deployment, _moderator, _gimp, tetex_oid = gdn
    maintainer = deployment.add_maintainer("newcomer", "r0/c1/m0/s0")

    def attempt():
        try:
            yield from maintainer.update_contents(
                "/apps/typesetting/teTeX", add_files={"PATCH": b"p1"})
            return "accepted"
        except MaintenanceError:
            return "refused"

    assert deployment.run(attempt(), host=maintainer.host) == "refused"
    deployment.grant_maintainer("newcomer", tetex_oid.hex)
    assert deployment.run(attempt(), host=maintainer.host) == "accepted"


def test_maintainer_restores_old_version(gdn):
    deployment, _moderator, gimp_oid, _tetex = gdn
    maintainer = deployment.add_maintainer("wilber3", "r0/c0/m0/s0",
                                           maintains=[gimp_oid.hex])

    def botch_and_restore():
        yield from maintainer.update_contents(
            "/apps/graphics/Gimp", add_files={"README": b"BOTCHED"})
        master = deployment.object_servers["gos-r0-0"]
        semantics = master.replicas[gimp_oid.hex].semantics
        history = semantics.getHistory()
        botch_version = history[-1]["version"]
        yield from maintainer.restore_file("/apps/graphics/Gimp",
                                           "README", botch_version)
        return semantics.getFileContents("README")

    contents = deployment.run(botch_and_restore(), host=maintainer.host)
    assert contents == b"gimp v1"


def test_search_through_httpd(gdn):
    deployment, _moderator, _gimp, _tetex = gdn
    browser = deployment.add_browser("searcher", "r1/c1/m0/s1")

    def search():
        by_category = yield from browser.get(
            "/gdn-search?category=graphics")
        by_license = yield from browser.get("/gdn-search?license=lppl")
        no_match = yield from browser.get("/gdn-search?category=games")
        return by_category, by_license, no_match

    by_category, by_license, no_match = deployment.run(
        search(), host=browser.host)
    assert by_category.ok
    assert "/gdn/apps/graphics/gimp" in by_category.body.lower()
    assert "tetex" in by_license.body.lower()
    assert "0 package(s)" in no_match.body


def test_search_result_is_downloadable(gdn):
    """Search → name → GNS → GLS → bind: the full §5 pipeline."""
    deployment, _moderator, _gimp, _tetex = gdn
    browser = deployment.add_browser("search-dl", "r0/c1/m0/s1")

    def search_then_download():
        import re
        page = yield from browser.get("/gdn-search?name=gimp")
        match = re.search(r'href="(/gdn[^"]+)"', page.body)
        assert match, page.body
        listing = yield from browser.get(match.group(1))
        return listing

    listing = deployment.run(search_then_download(), host=browser.host)
    assert listing.ok
    assert "README" in listing.body


def test_removed_package_leaves_search_index(gdn):
    deployment, moderator, _gimp, _tetex = gdn

    def lifecycle():
        yield from moderator.create_package(
            "/apps/games/Ephemeral", {"f": b"x"},
            ReplicationScenario.single_server("gos-r0-0"))
        yield from moderator.remove_package("/apps/games/Ephemeral")

    deployment.run(lifecycle(), host=moderator.host)
    browser = deployment.add_browser("search-gone", "r0/c0/m0/s0")

    def search():
        page = yield from browser.get("/gdn-search?category=games")
        return page

    page = deployment.run(search(), host=browser.host)
    assert "0 package(s)" in page.body
