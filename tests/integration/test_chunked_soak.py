"""Chunked-transfer resilience soaks (ISSUE 9 tentpole).

Two fault scenarios against the same budgeted chunked-download
driver — the serving GOS crashing mid-transfer, and the client's
domain partitioning mid-transfer — judged by
:meth:`Soak.chunked_transfer_invariant`.  The asymmetry is the point:

* with resumption on, an interrupted download restarts from its
  checkpointed :class:`ResumeToken` and re-fetches (almost) nothing,
  so the shared retry budget easily covers the fault;
* with resumption off, every restart re-fetches all previously
  verified chunks, each re-fetch charges the budget, and the budget
  runs dry before the transfer can finish — the `transfer-completes`
  invariant fails.

A third pair of tests pins trace-replay determinism: the same seed
and fault schedule reproduce byte-identical LoadStats and downloader
counters, for the jittered reference policy and for the legacy
:class:`FixedRetry` discipline alike.
"""

from __future__ import annotations

from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ReplicationScenario
from repro.gdn.transfer import (ResumeToken, TransferBudgetExhausted,
                                TransferError)
from repro.sim.retry import ExponentialBackoff, FixedRetry, RetryBudget
from repro.sim.topology import Topology
from repro.workloads.packages import synthetic_file
from repro.workloads.scenario import ClosedLoopScenario, Soak

PACKAGE = "/apps/devel/BigTarball"
_FILE = "big.tar.gz"
CHUNK = 2048
CHUNKS = 48
PAYLOAD = synthetic_file("big-tarball", CHUNK * CHUNKS)

#: Fault window, relative to the start of the drive.  Each transfer
#: takes ~15 simulated seconds (48 cross-region round trips), so a
#: [10, 40) window reliably lands mid-transfer.
FAULT_AT = 10.0
FAULT_ENDS = 40.0

CLIENTS = 2
REQUESTS_EACH = 3


def _run_soak(resume, fault, policy=None, budget_burst=16.0, seed=13):
    """Drive budgeted chunked downloads across a fault; return
    ``(report, downloader, gdn)``.

    ``fault`` is ``"crash"`` (the single serving GOS reboots) or
    ``"partition"`` (the clients' site drops off the network).
    """
    topology = Topology.balanced(regions=2, countries=1, cities=1,
                                 sites=2)
    gdn = GdnDeployment(topology=topology, seed=seed, secure=False)
    gos = gdn.add_gos("gos-0", "r0/c0/m0/s0")
    # The access point must survive the GOS crash, so it is *not*
    # colocated — and it is a pure proxy (no representative caching):
    # every chunk read traverses to the object server.
    gdn.add_httpd("ap", site="r0/c0/m0/s1",
                  cache_policy=lambda _name: None)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")

    def publish():
        yield from moderator.create_package(
            PACKAGE, {_FILE: PAYLOAD},
            ReplicationScenario.single_server("gos-0", cache_ttl=None))

    gdn.run(publish(), host=moderator.host)
    gdn.settle(2.0)

    if policy is None:
        policy = ExponentialBackoff(timeout=2.0, retries=2, base=0.5,
                                    multiplier=2.0, max_delay=4.0,
                                    jitter=0.5)
    budget = RetryBudget(rate=0.0, burst=budget_burst)
    downloader = gdn.chunked_downloader(policy=policy, budget=budget,
                                        resume=resume, chunk_size=CHUNK)
    browser_for = gdn.browser_pool("soak")
    sim = gdn.world.sim

    def one_transfer(arrival):
        """One logical download: restart on transient failure, resume
        from the checkpointed token — the crashed-browser protocol."""
        browser = browser_for(arrival.site)
        saved = {}

        def checkpoint(token):
            saved["wire"] = token.to_wire()

        for _attempt in range(12):
            token = (ResumeToken.from_wire(saved["wire"])
                     if "wire" in saved else None)
            try:
                data, _token = yield from downloader.download(
                    browser, PACKAGE, _FILE, token=token,
                    checkpoint=checkpoint)
            except TransferBudgetExhausted:
                raise      # permanent: the budget is gone for good
            except TransferError:
                yield sim.timeout(2.0)
                continue
            assert data == PAYLOAD
            return True
        raise AssertionError("transfer never completed")

    scenario = ClosedLoopScenario(
        CLIENTS, 2.0, requests_per_client=REQUESTS_EACH,
        sites=[gdn.world.topology.site("r1/c0/m0/s0")], think="fixed",
        label="chunked-%s" % fault)
    soak = Soak(gdn.world, scenario, one_transfer,
                rng=gdn.world.rng_for("chunked-soak"))
    base = gdn.world.now
    if fault == "crash":
        soak.crash_restart(gos.host, base + FAULT_AT, base + FAULT_ENDS,
                           recover=lambda: gos.host.spawn(gos.recover()))
    elif fault == "partition":
        soak.partition(gdn.world.topology.site("r1/c0/m0/s0"),
                       base + FAULT_AT, FAULT_ENDS - FAULT_AT)
    else:
        raise ValueError(fault)
    soak.chunked_transfer_invariant(
        downloader, min_completed=CLIENTS * REQUESTS_EACH)
    report = soak.run()
    browser_for.close()
    return report, downloader, gdn


# -- crash-mid-transfer -------------------------------------------------------


def test_crash_mid_transfer_completes_with_resume():
    report, downloader, _gdn = _run_soak(resume=True, fault="crash")
    assert report.ok, report.failures
    # The fault really interrupted transfers, and resumption is what
    # carried them over it.
    assert downloader.resumes > 0
    assert downloader.transfers_failed > 0
    assert report.stats.ok == CLIENTS * REQUESTS_EACH
    # Resumption re-fetched (almost) nothing.
    assert downloader.refetch_ratio() <= 0.1


def test_crash_mid_transfer_fails_without_resume():
    """Restart-from-zero re-fetches every verified chunk, each
    re-fetch charges the budget, and the budget runs dry."""
    report, downloader, _gdn = _run_soak(resume=False, fault="crash")
    assert not report.ok
    failed = dict(report.failures)
    assert "transfer-completes" in failed
    assert "budget" in failed["transfer-completes"]
    assert downloader.budget_exhausted > 0
    assert downloader.resumes == 0


# -- partition-mid-transfer ---------------------------------------------------


def test_partition_mid_transfer_completes_with_resume():
    report, downloader, _gdn = _run_soak(resume=True, fault="partition")
    assert report.ok, report.failures
    assert downloader.resumes > 0
    assert report.stats.ok == CLIENTS * REQUESTS_EACH
    assert downloader.refetch_ratio() <= 0.1


def test_partition_mid_transfer_fails_without_resume():
    report, downloader, _gdn = _run_soak(resume=False, fault="partition")
    assert not report.ok
    assert "transfer-completes" in dict(report.failures)
    assert downloader.budget_exhausted > 0


# -- trace-replay determinism -------------------------------------------------


def _fingerprint(report, downloader, gdn):
    return (report.stats.summary(),
            report.stats.latency.state(),
            gdn.world.sim.events_processed,
            downloader.chunks_ok, downloader.chunks_retried,
            downloader.resumes, downloader.bytes_fetched,
            downloader.bytes_refetched,
            downloader.budget.granted, downloader.budget.denied)


def test_faulted_transfer_replay_is_deterministic():
    """Same seed + same fault schedule ⇒ byte-identical stats and
    identical chunk retry/resume counters."""
    first = _fingerprint(*_run_soak(resume=True, fault="crash"))
    again = _fingerprint(*_run_soak(resume=True, fault="crash"))
    assert first == again


def test_fixed_retry_transfer_replay_is_deterministic():
    """The legacy no-backoff discipline replays identically too (it
    must never draw from the jitter RNG)."""
    legacy = FixedRetry(timeout=2.0, retries=2)
    first = _fingerprint(*_run_soak(resume=True, fault="partition",
                                    policy=legacy, budget_burst=24.0))
    again = _fingerprint(*_run_soak(resume=True, fault="partition",
                                    policy=FixedRetry(timeout=2.0,
                                                      retries=2),
                                    budget_burst=24.0))
    assert first == again
