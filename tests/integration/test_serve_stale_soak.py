"""Serve-stale availability under a GLS outage (ISSUE 8 tentpole).

The flash-crowd cache's third leg: when the location service is
unreachable, an HTTPD with ``serve_stale`` on answers from expired
cache entries instead of turning every request into a 24-second GLS
timeout and a 503.  The soak crashes the leaf directory nodes that
the HTTPDs' GLS clients talk to, keeps a closed-loop browser
population running across the fault, and judges the run with
:meth:`Soak.serve_stale_invariant` — which must pass with the cache
on and fail (on error rate) with the cache off.

Deliberately small TTLs everywhere (bindings and cache entries expire
*inside* the fault window) so availability during the outage can only
come from serve-stale, never from entries that simply outlived it.
"""

from __future__ import annotations

from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ReplicationScenario
from repro.sim.topology import Topology
from repro.workloads.cohort import CohortScenario
from repro.workloads.packages import synthetic_file
from repro.workloads.scenario import Soak

PACKAGE = "/apps/devel/HotRelease"
_FILE = "release.tar.gz"

#: Bindings and cache entries both expire on this horizon — far
#: shorter than the fault window below.
TTL = 5.0

CRASH_AFTER = 40.0
RESTART_AFTER = 160.0
DRIVE = 200.0


def _run_soak(gls_cache):
    """Build a two-region GDN, crash the HTTPDs' leaf GLS nodes mid
    drive, and return (report, deployment)."""
    topology = Topology.balanced(regions=2, countries=1, cities=1,
                                 sites=2)
    gdn = GdnDeployment(topology=topology, seed=7, secure=False,
                        gls_cache=gls_cache)
    for index, region in enumerate(gdn._regions()):
        gdn.add_gos("gos-%d" % index, next(region.sites()))
    for index, gos_name in enumerate(sorted(gdn.object_servers)):
        gdn.add_httpd("httpd-%d" % index, colocate_with=gos_name,
                      binding_ttl=TTL, cache_policy=lambda _name: TTL)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")

    def publish():
        yield from moderator.create_package(
            PACKAGE, {_FILE: synthetic_file("hot", 20_000)},
            ReplicationScenario.master_slave("gos-0", ["gos-1"],
                                             cache_ttl=60.0))

    gdn.run(publish(), host=moderator.host)
    gdn.settle(5.0)

    browser_for = gdn.browser_pool("soak")

    def one_request(arrival):
        response = yield from browser_for(arrival.site).download(
            PACKAGE, _FILE)
        if not response.ok:
            raise AssertionError("HTTP %d during soak"
                                 % response.status)
        return True

    scenario = CohortScenario(6, 2.0, duration=DRIVE,
                              sites=gdn.world.topology.sites,
                              label="serve-stale", equivalence=True)
    soak = Soak(gdn.world, scenario, one_request,
                rng=gdn.world.rng_for("serve-stale-soak"))
    # The GLS outage: every leaf directory node an HTTPD's GLS client
    # can talk to goes down for two minutes.  Replicas, DNS, and the
    # object servers all stay up — only location lookups suffer.
    base = gdn.world.now
    sim = gdn.world.sim
    for httpd in gdn.httpds:
        for node in gdn.gls.nodes[httpd.host.site.path]:
            soak.crash_restart(
                node.host, base + CRASH_AFTER, base + RESTART_AFTER,
                recover=lambda n=node: sim.process(n.recover()))
    soak.serve_stale_invariant(caches=gdn.lookup_caches.values(),
                               require_stale_hits=bool(gls_cache))
    report = soak.run()
    browser_for.close()
    return report, gdn


def test_serve_stale_keeps_availability_during_gls_outage():
    report, gdn = _run_soak({"serve_stale": True,
                             "stale_holdoff": 10.0})
    assert report.ok, report.failures
    # Availability during the fault really came from stale entries.
    stale = sum(cache.stale_served
                for cache in gdn.lookup_caches.values())
    assert stale > 0
    assert report.stats.failed == 0


def test_cache_off_fails_the_availability_invariant():
    """The same soak without the cache: every expired binding turns
    into GLS timeouts and 503s for the whole fault window."""
    report, gdn = _run_soak(None)
    assert not gdn.lookup_caches
    assert not report.ok
    failed = dict(report.failures)
    assert "error rate" in failed["serve-stale-availability"]
    assert report.stats.failed > 0
