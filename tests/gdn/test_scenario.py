"""Unit tests for replication scenarios and the adaptive advisor."""

import pytest

from repro.gdn.scenario import (ObjectUsage, ReplicationScenario,
                                ScenarioAdvisor)


def test_scenario_roles():
    single = ReplicationScenario.single_server("gos-a")
    assert single.master_role == "server"
    assert single.replica_count == 1
    replicated = ReplicationScenario.master_slave("gos-a", ["gos-b"])
    assert replicated.master_role == "master"
    assert replicated.slave_role == "slave"
    assert replicated.replica_count == 2
    active = ReplicationScenario("active", "gos-a", ["gos-b"])
    assert active.slave_role == "replica"


def test_scenario_validation():
    with pytest.raises(ValueError):
        ReplicationScenario("gossip", "gos-a")
    with pytest.raises(ValueError):
        ReplicationScenario("client_server", "gos-a", ["gos-b"])


def test_usage_statistics():
    usage = ObjectUsage({"r0": 90, "r1": 10}, writes=5, size=1000)
    assert usage.reads == 100
    assert usage.read_write_ratio == 20.0
    assert usage.hot_regions() == ["r0", "r1"]
    assert usage.hot_regions(min_share=0.5) == ["r0"]


def test_advisor_cold_object_gets_single_server():
    advisor = ScenarioAdvisor({"r0": "gos-0", "r1": "gos-1"})
    scenario = advisor.recommend(ObjectUsage({"r1": 3}, writes=0))
    assert scenario.protocol == "client_server"
    assert scenario.master_gos == "gos-1"  # placed with its readers


def test_advisor_hot_read_mostly_gets_replicas_in_hot_regions():
    advisor = ScenarioAdvisor({"r0": "gos-0", "r1": "gos-1", "r2": "gos-2"})
    usage = ObjectUsage({"r0": 500, "r1": 400, "r2": 10}, writes=2)
    scenario = advisor.recommend(usage)
    assert scenario.protocol == "master_slave"
    assert scenario.master_gos == "gos-0"
    assert scenario.slave_gos == ["gos-1"]  # r2 is below the hot share
    assert scenario.cache_ttl == 600.0


def test_advisor_write_heavy_keeps_single_copy_short_caches():
    advisor = ScenarioAdvisor({"r0": "gos-0", "r1": "gos-1"})
    usage = ObjectUsage({"r0": 200}, writes=100)
    scenario = advisor.recommend(usage)
    assert scenario.protocol == "client_server"
    assert scenario.cache_ttl == 10.0


def test_advisor_unknown_region_falls_back_home():
    advisor = ScenarioAdvisor({"r0": "gos-0"}, home_region="r0")
    scenario = advisor.recommend(ObjectUsage({"r9": 1000}, writes=0))
    assert scenario.master_gos == "gos-0"


def test_advisor_needs_servers():
    with pytest.raises(ValueError):
        ScenarioAdvisor({})
