"""Unit tests for the attribute-based search service (§8)."""

import pytest

from repro.gdn.search import SearchService
from repro.sim import rpc
from repro.sim.topology import Topology
from repro.sim.world import World


@pytest.fixture
def world():
    return World(topology=Topology.balanced(2, 2, 1, 2), seed=19)


@pytest.fixture
def service(world):
    host = world.host("search", "r0/c0/m0/s0")
    service = SearchService(world, host)
    service.start()
    return service


def _call(world, client_host, service, method, args):
    def drive():
        reply = yield from rpc.call(client_host, service.host, service.port,
                                    method, args)
        return reply

    return world.run_until(client_host.spawn(drive()), limit=1e6)


def _register_fixtures(world, client, service):
    packages = [
        ("/apps/graphics/gimp", {"category": "graphics", "license": "gpl"}),
        ("/apps/graphics/xfig", {"category": "graphics", "license": "mit"}),
        ("/apps/editors/emacs", {"category": "editors", "license": "gpl"}),
    ]
    for name, attributes in packages:
        _call(world, client, service, "register",
              {"name": name, "attributes": attributes})


def test_register_and_search_by_attribute(world, service):
    client = world.host("client", "r0/c0/m0/s1")
    _register_fixtures(world, client, service)
    reply = _call(world, client, service, "search",
                  {"query": {"category": "graphics"}})
    assert reply["matches"] == ["/apps/graphics/gimp",
                                "/apps/graphics/xfig"]


def test_conjunctive_query(world, service):
    client = world.host("client", "r0/c0/m0/s1")
    _register_fixtures(world, client, service)
    reply = _call(world, client, service, "search",
                  {"query": {"category": "graphics", "license": "gpl"}})
    assert reply["matches"] == ["/apps/graphics/gimp"]


def test_search_is_case_insensitive_on_values(world, service):
    client = world.host("client", "r0/c0/m0/s1")
    _call(world, client, service, "register",
          {"name": "/apps/x", "attributes": {"license": "GPL"}})
    reply = _call(world, client, service, "search",
                  {"query": {"license": "gpl"}})
    assert reply["matches"] == ["/apps/x"]


def test_empty_query_lists_everything(world, service):
    client = world.host("client", "r0/c0/m0/s1")
    _register_fixtures(world, client, service)
    reply = _call(world, client, service, "search", {"query": {}})
    assert len(reply["matches"]) == 3


def test_no_match(world, service):
    client = world.host("client", "r0/c0/m0/s1")
    _register_fixtures(world, client, service)
    reply = _call(world, client, service, "search",
                  {"query": {"category": "games"}})
    assert reply["matches"] == []


def test_reregistration_replaces_attributes(world, service):
    client = world.host("client", "r0/c0/m0/s1")
    _call(world, client, service, "register",
          {"name": "/apps/x", "attributes": {"category": "old"}})
    _call(world, client, service, "register",
          {"name": "/apps/x", "attributes": {"category": "new"}})
    assert _call(world, client, service, "search",
                 {"query": {"category": "old"}})["matches"] == []
    assert _call(world, client, service, "search",
                 {"query": {"category": "new"}})["matches"] == ["/apps/x"]


def test_unregister_removes_from_index(world, service):
    client = world.host("client", "r0/c0/m0/s1")
    _register_fixtures(world, client, service)
    reply = _call(world, client, service, "unregister",
                  {"name": "/apps/graphics/gimp"})
    assert reply["removed"]
    reply = _call(world, client, service, "search",
                  {"query": {"category": "graphics"}})
    assert reply["matches"] == ["/apps/graphics/xfig"]


def test_attributes_lookup(world, service):
    client = world.host("client", "r0/c0/m0/s1")
    _register_fixtures(world, client, service)
    reply = _call(world, client, service, "attributes",
                  {"name": "/apps/editors/emacs"})
    assert reply["found"]
    assert reply["attributes"]["license"] == "gpl"
    assert not _call(world, client, service, "attributes",
                     {"name": "/apps/ghost"})["found"]


def test_authorizer_gates_registration_not_queries(world):
    host = world.host("search", "r0/c0/m0/s0")
    service = SearchService(world, host,
                            authorizer=lambda ctx: False)
    service.start()
    client = world.host("client", "r0/c0/m0/s1")

    def register():
        try:
            yield from rpc.call(client, host, service.port, "register",
                                {"name": "/apps/x", "attributes": {}})
        except rpc.RpcFault as fault:
            return fault.kind

    assert world.run_until(client.spawn(register()),
                           limit=1e6) == "PermissionError"
    assert service.rejected == 1
    reply = _call(world, client, service, "search", {"query": {}})
    assert reply["matches"] == []  # queries still answered
