"""Unit tests for URL parsing, HTML rendering and access points."""

import pytest

from repro.gdn.browser import nearest_access_point
from repro.gdn.httpd import parse_gdn_url, render_listing


def test_parse_package_url():
    assert parse_gdn_url("/gdn/apps/graphics/Gimp") == \
        ("/apps/graphics/Gimp", None)


def test_parse_file_url():
    assert parse_gdn_url("/gdn/apps/graphics/Gimp/files/bin/gimp") == \
        ("/apps/graphics/Gimp", "bin/gimp")


def test_parse_nested_file_path():
    name, path = parse_gdn_url("/gdn/os/Linux/files/boot/vmlinuz-2.2.14")
    assert name == "/os/Linux"
    assert path == "boot/vmlinuz-2.2.14"


def test_parse_trailing_slash():
    assert parse_gdn_url("/gdn/apps/Gimp/") == ("/apps/Gimp", None)


def test_parse_non_gdn_url_rejected():
    with pytest.raises(ValueError):
        parse_gdn_url("/index.html")
    with pytest.raises(ValueError):
        parse_gdn_url("gdn/apps/Gimp")


def test_render_listing_contains_links_and_sizes():
    page = render_listing("/apps/Gimp", [{"path": "README", "size": 10},
                                         {"path": "bin/gimp", "size": 999}])
    assert "<html>" in page
    assert "/gdn/apps/Gimp/files/README" in page
    assert "999" in page
    assert "Globe Distribution Network" in page


def test_render_listing_escapes_html():
    page = render_listing("/apps/<script>", [{"path": "a&b", "size": 1}])
    assert "<script>" not in page.replace("&lt;script&gt;", "")
    assert "a&amp;b" in page


class _FakeHttpd:
    def __init__(self, host):
        self.host = host


def test_nearest_access_point_prefers_closest():
    from repro.sim.topology import Topology
    from repro.sim.world import World

    world = World(topology=Topology.balanced(2, 2, 2, 2))
    user = world.host("user", "r0/c0/m0/s0")
    near = _FakeHttpd(world.host("httpd-near", "r0/c0/m1/s0"))
    far = _FakeHttpd(world.host("httpd-far", "r1/c0/m0/s0"))
    assert nearest_access_point(user, [far, near]) is near
    with pytest.raises(ValueError):
        nearest_access_point(user, [])
