"""Tests for GDN-proxy servers on user machines (§4)."""

import pytest

from repro.gdn.browser import Browser
from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ReplicationScenario
from repro.sim.topology import Topology


@pytest.fixture(scope="module")
def gdn():
    deployment = GdnDeployment(
        topology=Topology.balanced(regions=2, countries=2, cities=1,
                                   sites=2),
        seed=303, secure=True)
    deployment.standard_fleet(gos_per_region=1)
    deployment.initial_sync()
    moderator = deployment.add_moderator("mod", "r0/c0/m0/s1")

    def publish():
        oid = yield from moderator.create_package(
            "/apps/net/Lynx", {"README": b"lynx browser", "bin": b"\x01" * 4096},
            ReplicationScenario.master_slave("gos-r0-0", ["gos-r1-0"],
                                             cache_ttl=300.0))
        return oid

    oid = deployment.run(publish(), host=moderator.host)
    deployment.settle(5.0)
    return deployment, oid


def test_proxy_serves_local_browser(gdn):
    deployment, _oid = gdn
    proxy = deployment.add_proxy("user-proxy", "r1/c1/m0/s0")
    # The local browser talks plain HTTP to the proxy on its own
    # machine (Figure 4: securing hop (4) is "a local administrative
    # matter").
    browser = Browser(deployment.world,
                      deployment.world.host("proxy-user", "r1/c1/m0/s0"),
                      proxy, channel_wrapper=None)

    def surf():
        page = yield from browser.get("/gdn/apps/net/Lynx")
        blob = yield from browser.download("/apps/net/Lynx", "bin")
        return page, blob

    page, blob = deployment.run(surf(), host=browser.host)
    assert page.ok
    assert "README" in page.body
    assert blob.ok
    assert blob.body == b"\x01" * 4096


def test_proxy_cache_serves_repeats_locally(gdn):
    deployment, _oid = gdn
    proxy = deployment.add_proxy("user-proxy-2", "r0/c1/m0/s1")
    browser = Browser(deployment.world,
                      deployment.world.host("proxy-user-2", "r0/c1/m0/s1"),
                      proxy)

    def surf():
        first = yield from browser.download("/apps/net/Lynx", "README")
        second = yield from browser.download("/apps/net/Lynx", "README")
        return first, second

    first, second = deployment.run(surf(), host=browser.host)
    assert first.ok and second.ok
    # The second hit executes against the proxy's cached copy: no
    # network beyond the user's own site, so it is much faster.
    assert second.elapsed < first.elapsed / 2


def test_proxy_cannot_push_writes(gdn):
    """A proxy is an insecure user machine: object servers must not
    accept state updates from it (§6.1)."""
    deployment, oid = gdn
    proxy = deployment.add_proxy("user-proxy-3", "r1/c0/m0/s1")

    def attempt():
        lr = yield from proxy.runtime.bind(oid)
        try:
            yield from lr.invoke("addFile", {"path": "evil",
                                             "data": b"trojan"})
        except Exception as exc:  # noqa: BLE001
            return type(exc).__name__
        return "accepted"

    outcome = deployment.run(attempt(), host=proxy.host)
    assert outcome != "accepted"
    master = deployment.object_servers["gos-r0-0"]
    files = [e["path"] for e in
             master.replicas[oid.hex].semantics.listContents()]
    assert "evil" not in files
