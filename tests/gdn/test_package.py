"""Unit tests for the package DSO semantics."""

import hashlib

import pytest

from repro.core.idl import Mode
from repro.gdn.package import PackageSemantics


@pytest.fixture
def package():
    pkg = PackageSemantics()
    pkg.addFile("README", b"the gimp graphics package")
    pkg.addFile("bin/gimp", b"\x7fELF" + b"\x00" * 100)
    return pkg


def test_interface_modes():
    interface = PackageSemantics.interface
    assert interface.mode("addFile") == Mode.WRITE
    assert interface.mode("delFile") == Mode.WRITE
    assert interface.mode("listContents") == Mode.READ
    assert interface.mode("getFileContents") == Mode.READ
    assert interface.mode("getFileDigest") == Mode.READ


def test_list_contents_sorted_with_sizes(package):
    contents = package.listContents()
    assert contents == [
        {"path": "README", "size": 25},
        {"path": "bin/gimp", "size": 104},
    ]


def test_get_file_contents(package):
    assert package.getFileContents("README") == b"the gimp graphics package"
    with pytest.raises(KeyError):
        package.getFileContents("missing")


def test_digest_matches_contents(package):
    expected = hashlib.sha256(b"the gimp graphics package").hexdigest()
    assert package.getFileDigest("README") == expected


def test_versioning(package):
    v0 = package.getVersion()
    package.addFile("NEWS", b"news")
    assert package.getVersion() == v0 + 1
    assert package.delFile("NEWS")
    assert package.getVersion() == v0 + 2
    assert not package.delFile("NEWS")  # no-op delete
    assert package.getVersion() == v0 + 2


def test_bad_paths_rejected(package):
    with pytest.raises(ValueError):
        package.addFile("/absolute", b"x")
    with pytest.raises(ValueError):
        package.addFile("", b"x")
    with pytest.raises(ValueError):
        package.addFile("notbytes", "string")


def test_attributes(package):
    package.setAttribute("category", "graphics")
    assert package.getAttribute("category") == "graphics"
    assert package.getAttribute("nope") is None
    assert package.getAttributes() == {"category": "graphics"}


def test_total_size(package):
    assert package.totalSize() == 25 + 104


def test_state_round_trip(package):
    package.setAttribute("category", "graphics")
    state = package.snapshot_state()
    restored = PackageSemantics()
    restored.restore_state(state)
    assert restored.listContents() == package.listContents()
    assert restored.getVersion() == package.getVersion()
    assert restored.getAttributes() == package.getAttributes()
    # The snapshot is a copy, not a view.
    restored.addFile("extra", b"x")
    assert package.getAttribute("category") == "graphics"
    assert len(package.listContents()) == 2
