"""Chunked-transfer tests: manifests, endpoints, downloader semantics."""

import hashlib

import pytest

from repro.core.repository import Implementation
from repro.gdn.deployment import GdnDeployment
from repro.gdn.httpd import parse_transfer_url
from repro.gdn.package import (DEFAULT_CHUNK_SIZE, PACKAGE_IMPL_ID,
                               PackageSemantics)
from repro.gdn.scenario import ReplicationScenario
from repro.gdn.transfer import (ChunkedDownloader, IntegrityError,
                                ResumeToken, TransferBudgetExhausted,
                                TransferError)
from repro.sim import rpc
from repro.sim.retry import ExponentialBackoff, RetryBudget
from repro.sim.topology import Topology
from tests.util import GlobeBed

PAYLOAD = bytes(range(256)) * 120  # 30720 bytes
SMALL = b"tiny file"


# -- PackageSemantics manifest/chunk methods ---------------------------------


def _package():
    pkg = PackageSemantics()
    pkg.addFile("big.bin", PAYLOAD)
    pkg.addFile("tiny.txt", SMALL)
    pkg.addFile("empty", b"")
    return pkg


def test_manifest_covers_file_exactly():
    pkg = _package()
    manifest = pkg.getFileManifest("big.bin", chunk_size=1000)
    assert manifest["size"] == len(PAYLOAD)
    assert manifest["chunk_count"] == 31  # 30*1000 + 720
    assert len(manifest["chunk_digests"]) == 31
    assert manifest["digest"] == hashlib.sha256(PAYLOAD).hexdigest()
    joined = b"".join(pkg.getFileChunk("big.bin", i, chunk_size=1000)
                      for i in range(manifest["chunk_count"]))
    assert joined == PAYLOAD
    for i in range(manifest["chunk_count"]):
        chunk = pkg.getFileChunk("big.bin", i, chunk_size=1000)
        assert (hashlib.sha256(chunk).hexdigest()
                == manifest["chunk_digests"][i])


def test_manifest_default_chunk_size():
    pkg = _package()
    manifest = pkg.getFileManifest("big.bin")
    assert manifest["chunk_size"] == DEFAULT_CHUNK_SIZE
    assert manifest["chunk_count"] == -(-len(PAYLOAD) // DEFAULT_CHUNK_SIZE)


def test_empty_file_has_one_empty_chunk():
    pkg = _package()
    manifest = pkg.getFileManifest("empty", chunk_size=100)
    assert manifest["chunk_count"] == 1
    assert pkg.getFileChunk("empty", 0, chunk_size=100) == b""


def test_chunk_index_and_size_validation():
    pkg = _package()
    with pytest.raises(IndexError):
        pkg.getFileChunk("tiny.txt", 5, chunk_size=100)
    with pytest.raises(IndexError):
        pkg.getFileChunk("tiny.txt", -1, chunk_size=100)
    with pytest.raises(ValueError):
        pkg.getFileManifest("tiny.txt", chunk_size=0)
    with pytest.raises(KeyError):
        pkg.getFileManifest("missing")


# -- URL parsing -------------------------------------------------------------


def test_parse_transfer_url_forms():
    assert parse_transfer_url("/gdn/apps/Gimp/manifest/bin/gimp") == \
        ("manifest", "/apps/Gimp", "bin/gimp", None, None)
    assert parse_transfer_url(
        "/gdn/apps/Gimp/chunk/3/bin/gimp?chunk_size=512") == \
        ("chunk", "/apps/Gimp", "bin/gimp", 3, 512)
    assert parse_transfer_url("/gdn/apps/Gimp/files/bin/gimp") is None
    assert parse_transfer_url("/gdn/apps/Gimp") is None
    assert parse_transfer_url("/other") is None
    with pytest.raises(ValueError):
        parse_transfer_url("/gdn/apps/Gimp/chunk/x/bin/gimp")
    with pytest.raises(ValueError):
        parse_transfer_url("/gdn/apps/Gimp/manifest/")
    with pytest.raises(ValueError):
        parse_transfer_url("/gdn/apps/Gimp/chunk/3/f?chunk_size=abc")


# -- GOS chunk endpoints -----------------------------------------------------


def test_gos_manifest_and_chunk_endpoints():
    bed = GlobeBed()
    bed.repository.register(Implementation(
        PACKAGE_IMPL_ID, PackageSemantics, code_size=10_000))
    gos = bed.gos("gos-1", "r0/c0/m0/s0")
    tool = bed.world.host("tool", "r0/c0/m0/s1")

    def drive():
        lr = yield from gos.create_local_replica(
            None, PACKAGE_IMPL_ID, "client_server", "server")
        yield from lr.invoke("addFile", {"path": "big.bin",
                                         "data": PAYLOAD})
        manifest = yield from rpc.call(
            tool, gos.host, gos.port, "get_manifest",
            {"oid": lr.oid.hex, "path": "big.bin", "chunk_size": 4096})
        chunk = yield from rpc.call(
            tool, gos.host, gos.port, "get_chunk",
            {"oid": lr.oid.hex, "path": "big.bin", "index": 1,
             "chunk_size": 4096})
        return manifest, chunk

    manifest, chunk = bed.run(drive(), host=tool)
    assert manifest["chunk_count"] == -(-len(PAYLOAD) // 4096)
    assert chunk == PAYLOAD[4096:8192]


def test_gos_chunk_endpoints_fault_on_unknown_oid():
    bed = GlobeBed()
    gos = bed.gos("gos-1", "r0/c0/m0/s0")
    tool = bed.world.host("tool", "r0/c0/m0/s1")

    def drive():
        try:
            yield from rpc.call(tool, gos.host, gos.port, "get_manifest",
                                {"oid": "ff" * 16, "path": "x"})
        except rpc.RpcFault as fault:
            return fault.kind

    assert bed.run(drive(), host=tool) == "GosError"


# -- ChunkedDownloader end to end -------------------------------------------


@pytest.fixture(scope="module")
def gdn():
    deployment = GdnDeployment(
        topology=Topology.balanced(2, 2, 1, 2), seed=11, secure=False)
    deployment.standard_fleet(gos_per_region=1)
    deployment.initial_sync()
    moderator = deployment.add_moderator("mod", "r0/c0/m0/s1")
    scenario = ReplicationScenario.master_slave(
        "gos-r0-0", ["gos-r1-0"], cache_ttl=300.0)

    def publish():
        oid = yield from moderator.create_package(
            "/apps/Big", {"big.bin": PAYLOAD}, scenario)
        return oid

    deployment.run(publish(), host=moderator.host)
    deployment.settle(5.0)
    return deployment


def test_clean_download_round_trip(gdn):
    browser = gdn.add_browser("dl-user", "r1/c0/m0/s1")
    downloader = gdn.chunked_downloader(chunk_size=4096,
                                        metrics_prefix="xfer_clean")
    checkpoints = []

    def run():
        data, token = yield from downloader.download(
            browser, "/apps/Big", "big.bin",
            checkpoint=lambda t: checkpoints.append(t.to_wire()))
        return data, token

    data, token = gdn.run(run(), host=browser.host)
    assert data == PAYLOAD
    count = -(-len(PAYLOAD) // 4096)
    assert downloader.chunks_ok == count
    assert downloader.chunks_retried == 0
    assert downloader.transfers_completed == 1
    assert downloader.duplicate_applications == 0
    assert downloader.refetch_ratio() == 0.0
    assert len(checkpoints) == count + 1  # manifest + each chunk
    snapshot = gdn.world.metrics.snapshot()
    assert snapshot["xfer_clean.chunks_ok"] == count
    assert snapshot["xfer_clean.inflight_transfers"] == 0


def test_resume_token_round_trips_through_wire_format(gdn):
    browser = gdn.add_browser("dl-wire", "r1/c0/m0/s1")
    downloader = gdn.chunked_downloader(chunk_size=4096,
                                        metrics_prefix=None)
    saved = []

    def run():
        yield from downloader.download(
            browser, "/apps/Big", "big.bin",
            checkpoint=lambda t: saved.append(t.to_wire()))

    gdn.run(run(), host=browser.host)
    # A mid-transfer checkpoint (3 chunks in) resumes to completion.
    token = ResumeToken.from_wire(saved[3])
    assert len(token.chunks) == 3
    resumer = gdn.chunked_downloader(chunk_size=4096, metrics_prefix=None)
    browser2 = gdn.add_browser("dl-wire-2", "r1/c0/m0/s1")

    def resume():
        data, _ = yield from resumer.download(
            browser2, "/apps/Big", "big.bin", token=token)
        return data

    assert gdn.run(resume(), host=browser2.host) == PAYLOAD
    assert resumer.resumes == 1
    # Verified chunks were skipped, not re-fetched.
    assert resumer.chunks_ok == -(-len(PAYLOAD) // 4096) - 3
    assert resumer.bytes_refetched == 0


def test_no_resume_with_tight_budget_exhausts(gdn):
    # A token whose chunks were all fetched once before: resume=False
    # discards the verified progress, so every chunk is a re-fetch —
    # and a two-token budget denies the third.
    browser = gdn.add_browser("dl-budget", "r1/c0/m0/s1")
    seeded = gdn.chunked_downloader(chunk_size=4096, metrics_prefix=None)
    saved = []

    def first():
        yield from seeded.download(
            browser, "/apps/Big", "big.bin",
            checkpoint=lambda t: saved.append(t.to_wire()))

    gdn.run(first(), host=browser.host)
    token = ResumeToken.from_wire(saved[-1])
    no_resume = gdn.chunked_downloader(
        resume=False, chunk_size=4096, metrics_prefix=None,
        budget=RetryBudget(rate=0.0, burst=2.0))

    def restart():
        try:
            yield from no_resume.download(browser, "/apps/Big", "big.bin",
                                          token=token)
        except TransferBudgetExhausted:
            return "exhausted"

    assert gdn.run(restart(), host=browser.host) == "exhausted"
    assert no_resume.budget_exhausted == 1
    assert no_resume.transfers_failed == 1
    # Only the budgeted re-fetches happened before the denial.
    assert no_resume.bytes_refetched == 2 * 4096
    # The same restart with resume=True costs the budget nothing.
    with_resume = gdn.chunked_downloader(
        resume=True, chunk_size=4096, metrics_prefix=None,
        budget=RetryBudget(rate=0.0, burst=2.0))
    token2 = ResumeToken.from_wire(saved[-1])

    def finish():
        data, _ = yield from with_resume.download(
            browser, "/apps/Big", "big.bin", token=token2)
        return data

    assert gdn.run(finish(), host=browser.host) == PAYLOAD
    assert with_resume.budget_exhausted == 0


def test_corrupted_chunk_digest_raises_integrity_error(gdn):
    browser = gdn.add_browser("dl-corrupt", "r1/c0/m0/s1")
    downloader = gdn.chunked_downloader(
        policy=ExponentialBackoff(timeout=3.0, retries=2, base=0.05,
                                  jitter=0.0),
        chunk_size=4096, metrics_prefix=None)
    token = ResumeToken("/apps/Big", "big.bin", 4096)

    def run():
        try:
            yield from downloader.download(browser, "/apps/Big", "big.bin",
                                           token=token)
        except IntegrityError:
            return "integrity"

    # Fetch the real manifest first, then corrupt one chunk digest so
    # every arriving copy of chunk 0 fails verification.
    def seed_manifest():
        yield from downloader.download(browser, "/apps/Big", "big.bin",
                                       token=token,
                                       checkpoint=lambda t: None)

    gdn.run(seed_manifest(), host=browser.host)
    token.chunks.clear()
    token.manifest["chunk_digests"][0] = "0" * 64
    assert gdn.run(run(), host=browser.host) == "integrity"
    assert downloader.integrity_failures >= downloader.policy.attempts


def test_missing_file_is_fatal_without_retries(gdn):
    browser = gdn.add_browser("dl-404", "r1/c0/m0/s1")
    downloader = gdn.chunked_downloader(chunk_size=4096,
                                        metrics_prefix=None)

    def run():
        try:
            yield from downloader.download(browser, "/apps/Big",
                                           "no-such-file")
        except TransferError as exc:
            return str(exc)

    message = gdn.run(run(), host=browser.host)
    assert "404" in message
    assert downloader.chunks_retried == 0
    assert downloader.transfers_failed == 1


def test_token_object_mismatch_rejected(gdn):
    browser = gdn.add_browser("dl-mismatch", "r1/c0/m0/s1")
    downloader = gdn.chunked_downloader(metrics_prefix=None)
    token = ResumeToken("/apps/Other", "big.bin")

    def run():
        try:
            yield from downloader.download(browser, "/apps/Big", "big.bin",
                                           token=token)
        except TransferError:
            return "rejected"

    assert gdn.run(run(), host=browser.host) == "rejected"


def test_downloader_defaults_are_a_jittered_backoff():
    world = GdnDeployment(topology=Topology.balanced(1, 1, 1, 2),
                          seed=1, secure=False)
    downloader = ChunkedDownloader(world.world)
    assert isinstance(downloader.policy, ExponentialBackoff)
    assert downloader.policy.jitter > 0.0
