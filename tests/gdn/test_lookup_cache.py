"""Unit tests for the flash-crowd GLS-lookup cache.

Covers the four behaviours the serving layer depends on: TTL +
negative caching with an LRU bound, singleflight coalescing (including
crashed waiters and a crashed leader), serve-stale during upstream
outages, and proactive refresh of hot entries — plus the gauge-drain
discipline (no leaked waiters or in-flight records after any run).
"""

import pytest

from repro.analysis.telemetry import MetricsRegistry
from repro.gdn.cache import GlsLookupCache
from repro.gls.service import GlsError
from repro.sim.kernel import Simulator
from repro.sim.rpc import RpcTimeout
from repro.sim.transport import TransportError

WIRES = [{"site": "r0/c0/m0/s0", "protocol": "master_slave",
          "impl_id": "test.kv"}]
MOVED = [{"site": "r1/c0/m0/s0", "protocol": "master_slave",
          "impl_id": "test.kv"}]


class SlowUpstream:
    """Scripted location service: fixed delay, optional failure."""

    def __init__(self, sim, delay=1.0):
        self.sim = sim
        self.delay = delay
        self.records = {}
        self.lookups = 0
        self.registrations = 0
        self.fail_with = None

    def lookup(self, oid_hex):
        self.lookups += 1
        if self.delay:
            yield self.sim.timeout(self.delay)
        if self.fail_with is not None:
            raise self.fail_with
        return list(self.records.get(oid_hex, []))

    def register(self, oid_hex, ca_wire, store_level=0):
        self.registrations += 1
        self.records.setdefault(oid_hex, []).append(ca_wire)
        return oid_hex
        yield  # pragma: no cover

    def unregister(self, oid_hex, ca_wire):
        self.records.get(oid_hex, []).remove(ca_wire)
        return None
        yield  # pragma: no cover


def build(sim=None, delay=1.0, **options):
    sim = sim or Simulator()
    upstream = SlowUpstream(sim, delay=delay)
    upstream.records["oid-1"] = list(WIRES)
    cache = GlsLookupCache(sim, upstream, **options)
    return sim, upstream, cache


def run_lookup(sim, cache, oid_hex, **kwargs):
    """Drive one cached lookup to completion, returning its value."""
    out = {}

    def driver():
        out["value"] = yield from cache.lookup(oid_hex, **kwargs)

    sim.process(driver())
    sim.run()
    if "value" not in out:
        raise AssertionError("lookup did not complete")
    return out["value"]


def drained(cache):
    """The after-run invariant: no in-flight records, no parked
    waiters left behind."""
    return not cache._inflight and cache._waiting == 0


# -- TTL, negative caching, LRU ------------------------------------------


def test_fresh_hit_within_ttl():
    sim, upstream, cache = build(ttl=60.0)
    first = run_lookup(sim, cache, "oid-1")
    second = run_lookup(sim, cache, "oid-1")
    assert first == WIRES and second == WIRES
    assert upstream.lookups == 1
    assert cache.misses == 1 and cache.hits == 1
    assert drained(cache)


def test_entry_expires_after_ttl():
    sim, upstream, cache = build(ttl=60.0)
    run_lookup(sim, cache, "oid-1")
    sim.run(until=sim.now + 61.0)
    run_lookup(sim, cache, "oid-1")
    assert upstream.lookups == 2
    assert cache.misses == 2


def test_per_lookup_ttl_override():
    sim, upstream, cache = build(ttl=60.0)
    run_lookup(sim, cache, "oid-1", ttl=5.0)
    sim.run(until=sim.now + 6.0)
    run_lookup(sim, cache, "oid-1")
    assert upstream.lookups == 2


def test_negative_caching_and_expiry():
    sim, upstream, cache = build(negative_ttl=30.0)
    assert run_lookup(sim, cache, "missing") == []
    assert run_lookup(sim, cache, "missing") == []
    assert upstream.lookups == 1
    assert cache.negative_hits == 1
    sim.run(until=sim.now + 31.0)
    run_lookup(sim, cache, "missing")
    assert upstream.lookups == 2


def test_lru_eviction_bounds_occupancy():
    sim, upstream, cache = build(capacity=2)
    upstream.records["oid-2"] = list(WIRES)
    upstream.records["oid-3"] = list(WIRES)
    run_lookup(sim, cache, "oid-1")
    run_lookup(sim, cache, "oid-2")
    run_lookup(sim, cache, "oid-1")   # refresh oid-1's recency
    run_lookup(sim, cache, "oid-3")   # evicts oid-2
    assert len(cache) == 2
    assert cache.evictions == 1
    run_lookup(sim, cache, "oid-1")
    assert cache.hits == 2            # oid-1 survived
    run_lookup(sim, cache, "oid-2")   # gone: upstream consulted again
    assert upstream.lookups == 4


def test_refresh_bypasses_fresh_entry():
    sim, upstream, cache = build()
    run_lookup(sim, cache, "oid-1")
    upstream.records["oid-1"] = list(MOVED)
    assert run_lookup(sim, cache, "oid-1") == WIRES
    assert run_lookup(sim, cache, "oid-1", refresh=True) == MOVED
    assert run_lookup(sim, cache, "oid-1") == MOVED
    assert upstream.lookups == 2


# -- singleflight ---------------------------------------------------------


def fan_out(sim, cache, count, oid_hex="oid-1"):
    """Spawn ``count`` concurrent lookups; return (values, errors)."""
    values, errors = [], []

    def caller():
        try:
            wires = yield from cache.lookup(oid_hex)
        except Exception as exc:
            errors.append(exc)
        else:
            values.append(wires)

    processes = [sim.process(caller()) for _ in range(count)]
    sim.run()
    return processes, values, errors


def test_singleflight_coalesces_concurrent_misses():
    sim, upstream, cache = build(delay=2.0)
    _, values, errors = fan_out(sim, cache, 8)
    assert not errors
    assert len(values) == 8 and all(v == WIRES for v in values)
    assert upstream.lookups == 1
    assert cache.misses == 8 and cache.coalesced == 7
    assert drained(cache)


def test_singleflight_failure_fans_out():
    sim, upstream, cache = build(delay=2.0)
    upstream.fail_with = GlsError("directory fault")
    _, values, errors = fan_out(sim, cache, 5)
    assert not values
    assert len(errors) == 5
    assert all(isinstance(exc, GlsError) for exc in errors)
    assert upstream.lookups == 1
    assert drained(cache)


def test_singleflight_killed_waiter_does_not_leak():
    sim, upstream, cache = build(delay=2.0)
    values, errors = [], []

    def caller():
        try:
            values.append((yield from cache.lookup("oid-1")))
        except Exception as exc:
            errors.append(exc)

    leader = sim.process(caller())
    victim = sim.process(caller())
    survivor = sim.process(caller())

    def assassin():
        yield sim.timeout(1.0)    # mid-flight
        victim.kill()

    sim.process(assassin())
    sim.run()
    assert leader.triggered and survivor.triggered
    assert values == [WIRES, WIRES]
    assert not errors
    assert drained(cache)


def test_singleflight_killed_leader_releases_waiters():
    sim, upstream, cache = build(delay=2.0)
    values, errors = [], []

    def caller():
        try:
            values.append((yield from cache.lookup("oid-1")))
        except Exception as exc:
            errors.append(exc)

    leader = sim.process(caller())
    sim.process(caller())
    sim.process(caller())

    def assassin():
        yield sim.timeout(1.0)
        leader.kill()

    sim.process(assassin())
    sim.run()
    assert not values
    assert len(errors) == 2
    assert all(isinstance(exc, TransportError) for exc in errors)
    assert drained(cache)
    # The key is retryable afterwards.
    assert run_lookup(sim, cache, "oid-1") == WIRES


# -- serve-stale ----------------------------------------------------------


def outage(cache, upstream, sim, ttl=10.0):
    """Fill the entry, let it expire, then take the upstream down."""
    run_lookup(sim, cache, "oid-1", ttl=ttl)
    sim.run(until=sim.now + ttl + 1.0)
    upstream.fail_with = RpcTimeout("gls partitioned")


def test_serve_stale_on_upstream_timeout():
    sim, upstream, cache = build(serve_stale=True, stale_holdoff=5.0)
    outage(cache, upstream, sim)
    assert run_lookup(sim, cache, "oid-1") == WIRES
    assert cache.stale_served == 1
    # Re-armed: requests inside the holdoff are immediate stale hits,
    # not new upstream probes.
    before = upstream.lookups
    assert run_lookup(sim, cache, "oid-1") == WIRES
    assert upstream.lookups == before
    assert cache.stale_served == 2
    assert drained(cache)


def test_serve_stale_fans_out_to_waiters():
    sim, upstream, cache = build(delay=2.0, serve_stale=True)
    outage(cache, upstream, sim)
    _, values, errors = fan_out(sim, cache, 4)
    assert not errors
    assert len(values) == 4 and all(v == WIRES for v in values)
    assert cache.stale_served == 4
    assert drained(cache)


def test_serve_stale_off_propagates_timeout():
    sim, upstream, cache = build(serve_stale=False)
    outage(cache, upstream, sim)
    with pytest.raises(RpcTimeout):
        run_lookup(sim, cache, "oid-1")
    assert drained(cache)


def test_serve_stale_recovers_after_outage():
    sim, upstream, cache = build(serve_stale=True, stale_holdoff=1.0)
    outage(cache, upstream, sim)
    run_lookup(sim, cache, "oid-1")
    upstream.fail_with = None          # partition heals
    sim.run(until=sim.now + 2.0)       # past the holdoff
    assert run_lookup(sim, cache, "oid-1") == WIRES
    entry = cache._entries["oid-1"]
    assert not entry.stale             # fresh again


def test_stale_window_bounds_eligibility():
    sim, upstream, cache = build(serve_stale=True, stale_window=100.0)
    run_lookup(sim, cache, "oid-1", ttl=10.0)
    sim.run(until=sim.now + 200.0)     # long past ttl + stale_window
    upstream.fail_with = RpcTimeout("gls partitioned")
    with pytest.raises(RpcTimeout):
        run_lookup(sim, cache, "oid-1")


def test_negative_entries_never_served_stale():
    sim, upstream, cache = build(serve_stale=True, negative_ttl=5.0)
    run_lookup(sim, cache, "missing")
    sim.run(until=sim.now + 6.0)
    upstream.fail_with = RpcTimeout("gls partitioned")
    with pytest.raises(RpcTimeout):
        run_lookup(sim, cache, "missing")


def test_definitive_fault_never_masked_by_stale():
    sim, upstream, cache = build(serve_stale=True)
    outage(cache, upstream, sim)
    upstream.fail_with = GlsError("no such object")
    with pytest.raises(GlsError):
        run_lookup(sim, cache, "oid-1")
    assert cache.stale_served == 0


# -- proactive refresh ----------------------------------------------------


def test_hot_entry_refreshes_before_expiry():
    sim, upstream, cache = build(ttl=10.0, refresh_ahead=0.3,
                                 hot_threshold=3)
    run_lookup(sim, cache, "oid-1")            # t=1: filled, expires t=11
    for _ in range(3):                         # make it hot
        run_lookup(sim, cache, "oid-1")
    sim.run(until=9.0)                         # inside the last 30%
    run_lookup(sim, cache, "oid-1")            # hit triggers the refresh
    sim.run()                                  # let the refresh land
    assert cache.refreshes == 1
    assert upstream.lookups == 2
    # The crowd never sees the TTL cliff: past the original expiry the
    # refreshed entry still answers without an upstream probe.
    sim.run(until=12.0)
    before = upstream.lookups
    assert run_lookup(sim, cache, "oid-1") == WIRES
    assert upstream.lookups == before
    assert cache.misses == 1


def test_cold_entry_never_refreshed():
    sim, upstream, cache = build(ttl=10.0, refresh_ahead=0.3,
                                 hot_threshold=5)
    run_lookup(sim, cache, "oid-1")
    sim.run(until=9.0)
    run_lookup(sim, cache, "oid-1")            # only 1 hit: not hot
    sim.run()
    assert cache.refreshes == 0
    assert upstream.lookups == 1


# -- location-service wrapper + telemetry ---------------------------------


def test_register_invalidates_entry():
    sim, upstream, cache = build()
    run_lookup(sim, cache, "oid-1")

    def registrar():
        yield from cache.register("oid-1", dict(MOVED[0]))

    sim.process(registrar())
    sim.run()
    assert cache.invalidations == 1
    assert run_lookup(sim, cache, "oid-1") == WIRES + MOVED
    assert upstream.lookups == 2


def test_bind_metrics_exposes_counters_and_gauges():
    sim, upstream, cache = build()
    registry = MetricsRegistry()
    cache.bind_metrics(registry, "cache")
    # Idempotent: a second binding (another component offering the
    # shared per-host cache) is a no-op, not a duplicate-name error.
    cache.bind_metrics(registry, "cache.again")
    assert "cache.again.hits" not in registry
    run_lookup(sim, cache, "oid-1")
    run_lookup(sim, cache, "oid-1")
    assert registry.get("cache.hits").value == 1
    assert registry.get("cache.misses").value == 1
    assert registry.get("cache.occupancy").value == 1
    assert registry.get("cache.inflight").value == 0
    assert registry.get("cache.waiters").value == 0
    assert registry.get("cache.upstream_lookups").value == 1
