"""Unit tests for package version management (§8 future work)."""

import pytest

from repro.gdn.package import HISTORY_RETENTION, PackageSemantics


@pytest.fixture
def package():
    pkg = PackageSemantics()
    pkg.addFile("README", b"version one")
    return pkg


def test_history_records_operations(package):
    package.addFile("README", b"version two")
    package.delFile("README")
    package.setAttribute("category", "docs")
    history = package.getHistory()
    assert [entry["op"] for entry in history] == ["add", "add", "del",
                                                  "attr"]
    assert [entry["version"] for entry in history] == [1, 2, 3, 4]
    assert history[0]["size"] == len(b"version one")
    assert "digest" in history[1]


def test_restore_overwritten_file(package):
    package.addFile("README", b"version two")  # supersedes v1 at v2
    restored_version = package.restoreFile("README", 2)
    assert package.getFileContents("README") == b"version one"
    assert restored_version == 3  # the restore is itself a new version


def test_restore_deleted_file(package):
    package.delFile("README")  # retained under version 2
    assert "README" not in [e["path"] for e in package.listContents()]
    package.restoreFile("README", 2)
    assert package.getFileContents("README") == b"version one"


def test_restore_unknown_version_rejected(package):
    with pytest.raises(KeyError):
        package.restoreFile("README", 99)


def test_retention_is_bounded(package):
    for index in range(HISTORY_RETENTION + 5):
        package.addFile("README", b"v%d" % index)
    # The very first contents have been evicted.
    with pytest.raises(KeyError):
        package.restoreFile("README", 2)
    # Recent ones are still restorable.
    latest_supersede_version = package.getVersion()
    package.restoreFile("README", latest_supersede_version)


def test_history_survives_state_round_trip(package):
    package.addFile("README", b"version two")
    clone = PackageSemantics()
    clone.restore_state(package.snapshot_state())
    assert clone.getHistory() == package.getHistory()
    clone.restoreFile("README", 2)
    assert clone.getFileContents("README") == b"version one"
    # The original is unaffected (deep copy).
    assert package.getFileContents("README") == b"version two"
