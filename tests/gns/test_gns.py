"""Tests for the Globe Name Service layer and the Naming Authority."""

import pytest

from repro.gns.authority import NamingAuthority
from repro.gns.dns.records import RRType
from repro.gns.dns.server import DNS_PORT
from repro.gns.dns.tsig import TsigKey
from repro.gns.gns import (GlobeNameService, GnsError, decode_oid_txt,
                           dns_to_object_name, encode_oid_txt,
                           object_name_to_dns)
from repro.sim import rpc

from tests.gns.test_dns_system import KEY, GDN_ZONE, DnsBed, run


# -- name mapping (pure functions) -------------------------------------------


def test_object_name_to_dns_reverses_components():
    assert (object_name_to_dns("/apps/graphics/Gimp", "gdn.cs.vu.nl")
            == "gimp.graphics.apps.gdn.cs.vu.nl")


def test_paper_example_mapping():
    # §5: /nl/vu/cs/globe/somePackage -> somePackage.globe.cs.vu.nl
    assert (object_name_to_dns("/nl/vu/cs/globe/somePackage", "")
            == "somepackage.globe.cs.vu.nl")


def test_dns_to_object_name_round_trip():
    dns_name = object_name_to_dns("/apps/graphics/gimp", GDN_ZONE)
    assert dns_to_object_name(dns_name, GDN_ZONE) == "/apps/graphics/gimp"


def test_relative_object_name_rejected():
    with pytest.raises(GnsError):
        object_name_to_dns("apps/gimp", GDN_ZONE)


def test_dns_syntax_restriction_surfaces():
    # The paper's noted disadvantage: DNS restricts name syntax.
    with pytest.raises(GnsError):
        object_name_to_dns("/apps/my package", GDN_ZONE)
    with pytest.raises(GnsError):
        object_name_to_dns("/apps/under_score", GDN_ZONE)


def test_foreign_dns_name_rejected():
    with pytest.raises(GnsError):
        dns_to_object_name("gimp.example.org", GDN_ZONE)


def test_oid_txt_encoding():
    assert decode_oid_txt(encode_oid_txt("abcd")) == "abcd"
    with pytest.raises(GnsError):
        decode_oid_txt("not-an-oid")


# -- end-to-end GNS over DNS --------------------------------------------------


@pytest.fixture
def bed():
    return DnsBed()


def _authority(bed, **kwargs):
    host = bed.world.host("gns-authority", "r0/c0/m0/s1")
    authority = NamingAuthority(
        bed.world, host, primary=("dns-gdn-1", DNS_PORT),
        tsig_key=KEY, zone=GDN_ZONE, **kwargs)
    authority.start()
    return authority


def test_gns_resolves_registered_name(bed):
    resolver = bed.resolver("user-1", "r0/c0/m0/s1")
    gns = GlobeNameService(bed.world, resolver.host, resolver, zone=GDN_ZONE)
    oid_hex = run(bed.world, gns.resolve("/apps/Gimp"), host=resolver.host)
    assert oid_hex == "aa"


def test_gns_unknown_name_raises(bed):
    resolver = bed.resolver("user-1", "r0/c0/m0/s1")
    gns = GlobeNameService(bed.world, resolver.host, resolver, zone=GDN_ZONE)

    def attempt():
        try:
            yield from gns.resolve("/apps/Nothing")
        except GnsError:
            return "unknown"

    assert run(bed.world, attempt(), host=resolver.host) == "unknown"


def test_authority_add_name_end_to_end(bed):
    authority = _authority(bed, batch_window=0.1)
    tool_host = bed.world.host("modtool", "r0/c1/m0/s1")

    def add_and_resolve():
        reply = yield from rpc.call(
            tool_host, authority.host, authority.port, "add_name",
            {"name": "/apps/editors/Emacs", "oid": "e1"})
        return reply

    reply = run(bed.world, add_and_resolve(), host=tool_host)
    assert reply["dns_name"] == "emacs.editors.apps." + GDN_ZONE

    resolver = bed.resolver("user-1", "r1/c0/m0/s1")
    gns = GlobeNameService(bed.world, resolver.host, resolver, zone=GDN_ZONE)
    oid_hex = run(bed.world, gns.resolve("/apps/editors/Emacs"),
                  host=resolver.host)
    assert oid_hex == "e1"


def test_authority_batches_updates(bed):
    authority = _authority(bed, batch_window=1.0, max_batch=50)
    tool_host = bed.world.host("modtool", "r0/c1/m0/s1")
    updates_before = bed.primary.updates_applied

    def add_many():
        channel = yield from rpc.RpcChannel.open(
            tool_host, authority.host, authority.port)
        pending = [
            bed.world.sim.process(channel.call(
                "add_name", {"name": "/apps/pkg%d" % i, "oid": "%02x" % i}))
            for i in range(10)]
        for process in pending:
            yield process
        channel.close()

    run(bed.world, add_many(), host=tool_host)
    # Ten names, one DNS UPDATE message (batching, paper §5).
    assert bed.primary.updates_applied - updates_before == 1
    assert authority.updates_sent == 1
    assert authority.names_added == 10


def test_authority_remove_name(bed):
    authority = _authority(bed, batch_window=0.05)
    tool_host = bed.world.host("modtool", "r0/c1/m0/s1")

    def add_then_remove():
        yield from rpc.call(tool_host, authority.host, authority.port,
                            "add_name", {"name": "/apps/Tmp", "oid": "dd"})
        yield from rpc.call(tool_host, authority.host, authority.port,
                            "remove_name", {"name": "/apps/Tmp"})

    run(bed.world, add_then_remove(), host=tool_host)
    zone = bed.primary.zones[GDN_ZONE]
    assert not zone.rrset("tmp.apps." + GDN_ZONE, RRType.TXT)


def test_authority_rejects_unauthorized_principal(bed):
    def moderators_only(ctx):
        return ctx.peer_principal == "moderator"

    authority = _authority(bed, batch_window=0.05,
                           authorizer=moderators_only)
    tool_host = bed.world.host("rando", "r0/c1/m0/s1")

    def attempt():
        try:
            yield from rpc.call(tool_host, authority.host, authority.port,
                                "add_name", {"name": "/apps/Evil",
                                             "oid": "66"})
        except rpc.RpcFault as fault:
            return fault.kind

    assert run(bed.world, attempt(), host=tool_host) == "GnsError"
    assert authority.requests_rejected == 1


def test_two_level_naming_stability(bed):
    """§5: name -> OID mappings stay stable even when replicas move;
    only the GLS layer changes.  The cached TXT record stays valid."""
    authority = _authority(bed, batch_window=0.05)
    tool_host = bed.world.host("modtool", "r0/c1/m0/s1")

    def add():
        yield from rpc.call(tool_host, authority.host, authority.port,
                            "add_name", {"name": "/apps/Stable",
                                         "oid": "5a"})

    run(bed.world, add(), host=tool_host)
    resolver = bed.resolver("user-1", "r1/c0/m0/s1")
    gns = GlobeNameService(bed.world, resolver.host, resolver, zone=GDN_ZONE)

    def resolve_twice():
        first = yield from gns.resolve("/apps/Stable")
        # Replica movement would re-register contact addresses in the
        # GLS; the name service is untouched, so this resolve is a
        # cache hit with the same OID.
        second = yield from gns.resolve("/apps/Stable")
        return first, second, resolver.cache_hits

    first, second, hits = run(bed.world, resolve_twice(),
                              host=resolver.host)
    assert first == second == "5a"
    assert hits == 1
