"""Integration tests: authoritative servers, resolvers, updates, AXFR."""

import pytest

from repro.gns.dns.records import ResourceRecord, RRType
from repro.gns.dns.resolver import CachingResolver, ResolutionError
from repro.gns.dns.server import DNS_PORT, AuthoritativeServer
from repro.gns.dns.tsig import TsigKey, TsigKeyring, sign_message
from repro.gns.dns.zone import Rcode, Zone
from repro.sim.topology import Topology
from repro.sim.world import World

GDN_ZONE = "gdn.cs.vu.nl"
KEY = TsigKey("gdn-key", b"gdn-secret")


def run(world, generator, host=None, limit=1e6):
    process = (host.spawn(generator) if host is not None
               else world.sim.process(generator))
    return world.run_until(process, limit=limit)


class DnsBed:
    """Root -> nl -> GDN zone deployment with one secondary."""

    def __init__(self, seed=9):
        topo = Topology.balanced(regions=2, countries=2, cities=2, sites=2)
        self.world = World(topology=topo, seed=seed)
        world = self.world

        self.root_host = world.host("dns-root", "r1/c0/m0/s0")
        self.tld_host = world.host("dns-nl", "r0/c1/m0/s0")
        self.primary_host = world.host("dns-gdn-1", "r0/c0/m0/s0")
        self.secondary_host = world.host("dns-gdn-2", "r1/c1/m0/s0")

        keyring = TsigKeyring()
        keyring.add(KEY)

        self.root = AuthoritativeServer(world, self.root_host)
        root_zone = Zone("", primary_host="dns-root")
        root_zone.add_record(ResourceRecord("nl", RRType.NS, 3600, "dns-nl"))
        self.root.add_primary_zone(root_zone)
        self.root.start()

        self.tld = AuthoritativeServer(world, self.tld_host)
        nl_zone = Zone("nl", primary_host="dns-nl")
        nl_zone.add_record(ResourceRecord(GDN_ZONE, RRType.NS, 3600,
                                          "dns-gdn-1"))
        nl_zone.add_record(ResourceRecord(GDN_ZONE, RRType.NS, 3600,
                                          "dns-gdn-2"))
        self.tld.add_primary_zone(nl_zone)
        self.tld.start()

        self.primary = AuthoritativeServer(world, self.primary_host,
                                           keyring=keyring)
        gdn_zone = Zone(GDN_ZONE, primary_host="dns-gdn-1")
        gdn_zone.add_record(ResourceRecord(
            "gimp.apps." + GDN_ZONE, RRType.TXT, 300, "globe-oid=aa"))
        self.primary.add_primary_zone(
            gdn_zone, secondaries=[("dns-gdn-2", DNS_PORT)])
        self.primary.start()

        self.secondary = AuthoritativeServer(world, self.secondary_host,
                                             keyring=keyring)
        self.secondary.add_secondary_zone(GDN_ZONE, ("dns-gdn-1", DNS_PORT))
        self.secondary.start()
        run(world, self.secondary.initial_transfers(),
            host=self.secondary_host)

    def resolver(self, name, site, cache_enabled=True):
        host = self.world.host(name, site)
        return CachingResolver(self.world, host,
                               [("dns-root", DNS_PORT)],
                               cache_enabled=cache_enabled)


@pytest.fixture
def bed():
    return DnsBed()


def test_full_iterative_resolution(bed):
    resolver = bed.resolver("user-1", "r0/c0/m0/s1")
    result = run(bed.world,
                 resolver.resolve("gimp.apps." + GDN_ZONE, RRType.TXT),
                 host=resolver.host)
    assert result.ok
    assert result.records[0].data == "globe-oid=aa"
    assert not result.from_cache
    assert resolver.queries_sent == 3  # root -> nl -> gdn


def test_second_resolution_is_cached(bed):
    resolver = bed.resolver("user-1", "r0/c0/m0/s1")
    name = "gimp.apps." + GDN_ZONE

    def twice():
        first = yield from resolver.resolve(name, RRType.TXT)
        second = yield from resolver.resolve(name, RRType.TXT)
        return first, second

    first, second = run(bed.world, twice(), host=resolver.host)
    assert not first.from_cache
    assert second.from_cache
    assert resolver.queries_sent == 3  # no extra queries for the hit
    assert resolver.cache_hits == 1


def test_cache_expires_after_ttl(bed):
    resolver = bed.resolver("user-1", "r0/c0/m0/s1")
    name = "gimp.apps." + GDN_ZONE

    def with_gap():
        yield from resolver.resolve(name, RRType.TXT)
        queries_before = resolver.queries_sent
        yield bed.world.sim.timeout(600)  # past the 300s TTL
        result = yield from resolver.resolve(name, RRType.TXT)
        return result, resolver.queries_sent - queries_before

    result, extra_queries = run(bed.world, with_gap(), host=resolver.host)
    assert not result.from_cache
    # The referral path was still cached (NS ttl 3600), so only the
    # final authoritative query was repeated.
    assert extra_queries == 1


def test_cache_disabled_repeats_full_walk(bed):
    resolver = bed.resolver("user-1", "r0/c0/m0/s1", cache_enabled=False)
    name = "gimp.apps." + GDN_ZONE

    def twice():
        yield from resolver.resolve(name, RRType.TXT)
        yield from resolver.resolve(name, RRType.TXT)

    run(bed.world, twice(), host=resolver.host)
    assert resolver.queries_sent == 6


def test_nxdomain_resolution(bed):
    resolver = bed.resolver("user-1", "r0/c0/m0/s1")
    result = run(bed.world,
                 resolver.resolve("nothing.apps." + GDN_ZONE, RRType.TXT),
                 host=resolver.host)
    assert result.rcode == Rcode.NXDOMAIN
    assert not result.ok


def test_resolve_txt_helper_raises_on_missing(bed):
    resolver = bed.resolver("user-1", "r0/c0/m0/s1")

    def attempt():
        try:
            yield from resolver.resolve_txt("nothing.apps." + GDN_ZONE)
        except ResolutionError:
            return "missing"

    assert run(bed.world, attempt(), host=resolver.host) == "missing"


def test_signed_update_applies_and_notifies_secondary(bed):
    client_host = bed.world.host("authority", "r0/c0/m0/s1")
    from repro.sim.rpc import UdpRpcClient
    client = UdpRpcClient(client_host)
    message = {
        "zone": GDN_ZONE,
        "adds": [{"name": "tetex.apps." + GDN_ZONE, "type": "TXT",
                  "ttl": 300, "data": "globe-oid=bb"}],
        "deletes": [],
    }
    signed = sign_message(message, KEY)

    def send():
        reply = yield from client.call(bed.primary_host, DNS_PORT, "update",
                                       signed)
        return reply

    reply = run(bed.world, send(), host=client_host)
    assert reply["rcode"] == Rcode.NOERROR
    bed.world.run(until=bed.world.now + 10)  # NOTIFY + AXFR settle
    assert bed.secondary.zones[GDN_ZONE].serial == reply["serial"]
    assert bed.secondary.zones[GDN_ZONE].rrset(
        "tetex.apps." + GDN_ZONE, RRType.TXT)


def test_unsigned_update_rejected(bed):
    client_host = bed.world.host("attacker", "r0/c0/m0/s1")
    from repro.sim.rpc import UdpRpcClient
    client = UdpRpcClient(client_host)
    message = {"zone": GDN_ZONE, "deletes": [],
               "adds": [{"name": "evil.apps." + GDN_ZONE, "type": "TXT",
                         "ttl": 300, "data": "globe-oid=ee"}]}

    def send():
        reply = yield from client.call(bed.primary_host, DNS_PORT, "update",
                                       message)
        return reply

    reply = run(bed.world, send(), host=client_host)
    assert reply["rcode"] == Rcode.BADSIG
    assert bed.primary.updates_rejected == 1
    assert not bed.primary.zones[GDN_ZONE].rrset(
        "evil.apps." + GDN_ZONE, RRType.TXT)


def test_update_to_secondary_not_authoritative(bed):
    client_host = bed.world.host("authority", "r0/c0/m0/s1")
    from repro.sim.rpc import UdpRpcClient
    client = UdpRpcClient(client_host)
    signed = sign_message({"zone": GDN_ZONE, "adds": [], "deletes": []}, KEY)

    def send():
        reply = yield from client.call(bed.secondary_host, DNS_PORT,
                                       "update", signed)
        return reply

    assert run(bed.world, send(), host=client_host)["rcode"] == Rcode.NOTAUTH


def test_resolution_survives_primary_failure_via_secondary(bed):
    """Multiple authoritative servers carry the load (paper §5)."""
    bed.primary_host.crash()
    resolver = bed.resolver("user-1", "r0/c0/m0/s1")
    result = run(bed.world,
                 resolver.resolve("gimp.apps." + GDN_ZONE, RRType.TXT),
                 host=resolver.host, limit=1e7)
    assert result.ok
