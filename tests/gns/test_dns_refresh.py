"""Tests for secondary zone refresh (SOA-style periodic transfer)."""

from repro.gns.dns.records import ResourceRecord, RRType
from repro.gns.dns.server import DNS_PORT, AuthoritativeServer
from repro.gns.dns.zone import Zone
from repro.sim.topology import Level, Topology
from repro.sim.world import World


def _build(world, refresh_interval=None):
    primary_host = world.host("dns-primary", "r0/c0/m0/s0")
    primary = AuthoritativeServer(world, primary_host,
                                  require_tsig_for_updates=False)
    zone = Zone("example.nl", primary_host="dns-primary")
    zone.add_record(ResourceRecord("a.example.nl", RRType.TXT, 60, "v1"))
    # No secondaries wired for NOTIFY: refresh is the only channel.
    primary.add_primary_zone(zone, secondaries=[])
    primary.start()

    secondary_host = world.host("dns-secondary", "r1/c0/m0/s0")
    secondary = AuthoritativeServer(world, secondary_host,
                                    refresh_interval=refresh_interval)
    secondary.add_secondary_zone("example.nl", ("dns-primary", DNS_PORT))
    secondary.start()
    world.run_until(secondary_host.spawn(secondary.initial_transfers()),
                    limit=1e6)
    return primary, secondary


def test_refresh_picks_up_missed_updates():
    world = World(topology=Topology.balanced(2, 1, 1, 1), seed=8)
    primary, secondary = _build(world, refresh_interval=50.0)
    # Mutate the primary directly (no NOTIFY is sent: no secondaries
    # are registered for it).
    zone = primary.zones["example.nl"]
    zone.add_record(ResourceRecord("b.example.nl", RRType.TXT, 60, "v2"))
    zone.bump_serial()
    assert not secondary.zones["example.nl"].rrset("b.example.nl",
                                                   RRType.TXT)
    world.run(until=world.now + 120.0)
    assert secondary.zones["example.nl"].rrset("b.example.nl", RRType.TXT)
    assert secondary.transfers_fetched >= 1


def test_refresh_is_cheap_when_unchanged():
    world = World(topology=Topology.balanced(2, 1, 1, 1), seed=8)
    _primary, secondary = _build(world, refresh_interval=20.0)
    fetched_before = secondary.transfers_fetched
    world.run(until=world.now + 100.0)
    # Several refresh rounds ran; none replaced the zone.
    assert secondary.transfers_fetched == fetched_before


def test_no_refresh_without_interval():
    world = World(topology=Topology.balanced(2, 1, 1, 1), seed=8)
    primary, secondary = _build(world, refresh_interval=None)
    zone = primary.zones["example.nl"]
    zone.add_record(ResourceRecord("c.example.nl", RRType.TXT, 60, "v3"))
    zone.bump_serial()
    world.run(until=world.now + 200.0)
    assert not secondary.zones["example.nl"].rrset("c.example.nl",
                                                   RRType.TXT)
