"""Unit tests for DNS names, records and zones."""

import pytest

from repro.gns.dns.records import (DnsError, ResourceRecord, RRType,
                                   is_subdomain, name_labels, normalize_name,
                                   parent_name)
from repro.gns.dns.zone import Rcode, Zone


# -- names -------------------------------------------------------------------


def test_normalize_lowercases_and_strips():
    assert normalize_name(" Gimp.Apps.GDN.vu.NL. ") == "gimp.apps.gdn.vu.nl"
    assert normalize_name("") == ""
    assert normalize_name(".") == ""


def test_bad_labels_rejected():
    with pytest.raises(DnsError):
        normalize_name("has space.nl")
    with pytest.raises(DnsError):
        normalize_name("under_score.nl")
    with pytest.raises(DnsError):
        normalize_name("x" * 64 + ".nl")
    with pytest.raises(DnsError):
        normalize_name("a..b")


def test_subdomain_relation():
    assert is_subdomain("a.b.c", "b.c")
    assert is_subdomain("b.c", "b.c")
    assert is_subdomain("anything", "")
    assert not is_subdomain("ab.c", "b.c")
    assert not is_subdomain("b.c", "a.b.c")


def test_labels_and_parent():
    assert name_labels("a.b.c") == ["a", "b", "c"]
    assert name_labels("") == []
    assert parent_name("a.b.c") == "b.c"
    assert parent_name("c") == ""
    with pytest.raises(DnsError):
        parent_name("")


def test_record_wire_round_trip():
    record = ResourceRecord("pkg.gdn.vu.nl", RRType.TXT, 300, "globe-oid=ab")
    assert ResourceRecord.from_wire(record.to_wire()) == record


def test_record_negative_ttl_rejected():
    with pytest.raises(DnsError):
        ResourceRecord("a.nl", RRType.A, -1, "h")


# -- zones -------------------------------------------------------------------


@pytest.fixture
def zone():
    z = Zone("gdn.vu.nl", primary_host="dns-1")
    z.add_record(ResourceRecord("gimp.apps.gdn.vu.nl", RRType.TXT, 300,
                                "globe-oid=aa"))
    z.add_record(ResourceRecord("gimp.apps.gdn.vu.nl", RRType.A, 300, "h1"))
    return z


def test_exact_answer(zone):
    answer = zone.answer("gimp.apps.gdn.vu.nl", RRType.TXT)
    assert answer.rcode == Rcode.NOERROR
    assert answer.answers[0].data == "globe-oid=aa"
    assert answer.authoritative


def test_nxdomain(zone):
    assert zone.answer("nothing.gdn.vu.nl", RRType.TXT).rcode == \
        Rcode.NXDOMAIN


def test_nodata_for_existing_name_wrong_type(zone):
    answer = zone.answer("gimp.apps.gdn.vu.nl", RRType.NS)
    assert answer.rcode == Rcode.NOERROR
    assert answer.answers == []


def test_refused_outside_zone(zone):
    assert zone.answer("other.org", RRType.A).rcode == Rcode.REFUSED


def test_referral_at_zone_cut():
    parent = Zone("nl", primary_host="dns-nl")
    parent.add_record(ResourceRecord("gdn.vu.nl", RRType.NS, 600, "dns-1"))
    answer = parent.answer("gimp.apps.gdn.vu.nl", RRType.TXT)
    assert answer.is_referral
    assert not answer.authoritative
    assert answer.referral[0].data == "dns-1"


def test_cname_returned_for_other_types(zone):
    zone.add_record(ResourceRecord("thegimp.apps.gdn.vu.nl", RRType.CNAME,
                                   300, "gimp.apps.gdn.vu.nl"))
    answer = zone.answer("thegimp.apps.gdn.vu.nl", RRType.TXT)
    assert answer.answers[0].rtype == RRType.CNAME


def test_duplicate_add_is_idempotent(zone):
    before = zone.record_count()
    zone.add_record(ResourceRecord("gimp.apps.gdn.vu.nl", RRType.TXT, 300,
                                   "globe-oid=aa"))
    assert zone.record_count() == before


def test_remove_rrset(zone):
    assert zone.remove_rrset("gimp.apps.gdn.vu.nl", RRType.TXT)
    assert not zone.remove_rrset("gimp.apps.gdn.vu.nl", RRType.TXT)
    assert zone.answer("gimp.apps.gdn.vu.nl", RRType.TXT).answers == []


def test_record_outside_zone_rejected(zone):
    with pytest.raises(DnsError):
        zone.add_record(ResourceRecord("other.org", RRType.A, 300, "h"))


def test_zone_wire_round_trip(zone):
    zone.bump_serial()
    restored = Zone.from_wire(zone.to_wire())
    assert restored.serial == zone.serial
    assert restored.record_count() == zone.record_count()
    assert restored.answer("gimp.apps.gdn.vu.nl", RRType.TXT).answers


def test_serial_bumps_monotonically(zone):
    first = zone.bump_serial()
    second = zone.bump_serial()
    assert second == first + 1
