"""Unit tests for TSIG message signatures."""

from repro.gns.dns.tsig import (TsigKey, TsigKeyring, sign_message,
                                verify_message)


def _keyring(key):
    ring = TsigKeyring()
    ring.add(key)
    return ring


def test_sign_and_verify():
    key = TsigKey("gdn-key", b"secret")
    message = {"zone": "gdn.vu.nl", "adds": [{"name": "x", "type": "TXT",
                                              "ttl": 60, "data": "d"}]}
    signed = sign_message(message, key)
    assert verify_message(signed, _keyring(key))


def test_tampered_message_rejected():
    key = TsigKey("gdn-key", b"secret")
    signed = sign_message({"zone": "gdn.vu.nl", "adds": []}, key)
    signed["adds"] = [{"name": "evil", "type": "TXT", "ttl": 60,
                       "data": "d"}]
    assert not verify_message(signed, _keyring(key))


def test_unknown_key_rejected():
    key = TsigKey("gdn-key", b"secret")
    other = TsigKey("other-key", b"secret")
    signed = sign_message({"zone": "z"}, other)
    assert not verify_message(signed, _keyring(key))


def test_wrong_secret_rejected():
    signed = sign_message({"zone": "z"}, TsigKey("gdn-key", b"wrong"))
    assert not verify_message(signed, _keyring(TsigKey("gdn-key", b"right")))


def test_unsigned_message_rejected():
    assert not verify_message({"zone": "z"},
                              _keyring(TsigKey("k", b"s")))


def test_signature_ignores_field_order():
    key = TsigKey("k", b"s")
    a = sign_message({"zone": "z", "adds": [], "deletes": []}, key)
    b = sign_message({"deletes": [], "adds": [], "zone": "z"}, key)
    assert a["tsig"]["mac"] == b["tsig"]["mac"]
