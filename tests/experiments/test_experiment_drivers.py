"""Smoke tests for every experiment driver, at reduced scale.

These protect the benchmark harness: each driver must run, produce a
formatted table, and keep the qualitative shape its benchmark asserts
(the benches re-check at full scale).
"""

import pytest

from repro.experiments import (ablations, e1_dso_invocation,
                               e2_gls_locality, e3_end_to_end, e4_security,
                               e5_adaptive, e6_partitioning,
                               e7_gns_resolution, e8_recovery, e9_policy,
                               e10_load_scaling)


def test_e1_driver():
    result = e1_dso_invocation.run_dso_invocation_experiment(
        calls_per_point=3)
    text = e1_dso_invocation.format_result(result)
    assert "cross world" in text
    rows = {row["representative"]: row for row in result["rows"]}
    assert rows["cache role (fresh copy)"]["read_small"] == 0.0


def test_e2_driver():
    result = e2_gls_locality.run_gls_locality_experiment(
        lookups_per_point=2)
    e2_gls_locality.assert_proportionality(result)
    assert "WORLD" in e2_gls_locality.format_result(result)


def test_e3_driver():
    result = e3_end_to_end.run_end_to_end_experiment(
        package_count=4, read_count=40)
    www, mirror, gdn = result["rows"]
    assert gdn["latency"].mean < www["latency"].mean
    assert "GDN" in e3_end_to_end.format_result(result)


def test_e4_driver():
    result = e4_security.run_security_overhead_experiment()
    e4_security.assert_shape(result)
    assert "integrity only" in e4_security.format_result(result)


@pytest.mark.slow
def test_e5_driver():
    result = e5_adaptive.run_adaptive_replication_experiment(
        document_count=10, request_count=120,
        strategies=["NoRepl", "Adaptive"])
    rows = {row["strategy"]: row for row in result["rows"]}
    assert rows["Adaptive"]["latency"].mean \
        < rows["NoRepl"]["latency"].mean
    assert "Adaptive" in e5_adaptive.format_result(result)


def test_e6_driver():
    result = e6_partitioning.run_partitioning_experiment(
        object_count=16, lookups=32, subnode_counts=(1, 4))
    e6_partitioning.assert_shape(result)
    assert "subnode" in e6_partitioning.format_result(result)


def test_e7_driver():
    result = e7_gns_resolution.run_gns_resolution_experiment(
        name_count=8, batch_windows=(0.0, 1.0))
    e7_gns_resolution.assert_shape(result)
    assert "warm cache" in e7_gns_resolution.format_result(result)


def test_e8_driver():
    result = e8_recovery.run_recovery_experiment(downloads=5)
    e8_recovery.assert_shape(result)
    assert "after recovery" in e8_recovery.format_result(result)


def test_e9_driver():
    result = e9_policy.run_policy_experiment()
    e9_policy.assert_shape(result)
    assert "refused" in e9_policy.format_result(result)


def test_e10_driver():
    result = e10_load_scaling.run_load_scaling_experiment(
        loads=(40.0, 160.0), request_count=150)
    e10_load_scaling.assert_shape(result)
    assert "replicated" in e10_load_scaling.format_result(result)


def test_a1_driver():
    result = ablations.run_consistency_ablation(write_count=3,
                                                reads_per_write=3)
    push, pull = result["rows"]
    assert push["stale"] == 0
    assert "push" in ablations.format_consistency(result)


def test_a2_driver():
    result = ablations.run_mobility_ablation(moves=3, lookups_per_move=2)
    leaf, country = result["rows"]
    assert country["update"].mean < leaf["update"].mean
    assert "COUNTRY" in ablations.format_mobility(result)


def test_a3_driver():
    result = ablations.run_transport_ablation(lookups=5)
    udp, tcp = result["rows"]
    assert tcp["latency"].mean > udp["latency"].mean
    assert "UDP" in ablations.format_transport(result)
