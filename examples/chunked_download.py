#!/usr/bin/env python3
"""Resumable chunked downloads riding out crashes and partitions.

A large package moves as per-chunk RPCs with client-side reassembly,
integrity verification, and a *persistent resume token*
(``repro.gdn.transfer.ChunkedDownloader``).  Three acts, one download
each, everything on a scripted clock:

* **act 1 — server crash**: the only serving GOS crashes mid-transfer
  and reboots from stable storage a while later.  The budgeted
  download retries under jittered exponential backoff, restarts from
  its checkpointed token, and finishes without re-fetching verified
  chunks.
* **act 2 — client crash**: the downloading browser "crashes" (we
  throw it away) mid-transfer.  A brand-new browser — rebinding
  through the GLS exactly like a rebooted machine — picks up the
  token persisted by the checkpoint callback and resumes from the
  last verified chunk.
* **act 3 — partition**: the client's site falls off the internet for
  a while mid-transfer; the download rides the outage out on its
  retry budget and resumes when the network heals.

Every byte is verified against the manifest's per-chunk digests, and
the closing telemetry shows the point of resumption: interrupted
transfers, yes — wasted re-fetched bytes, (almost) none.

Run:  python examples/chunked_download.py
(set GDN_EXAMPLE_SCALE=small for a reduced CI-sized run)
"""

import hashlib
import os
import sys

from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ReplicationScenario
from repro.gdn.transfer import (ResumeToken, TransferBudgetExhausted,
                                TransferError)
from repro.sim.failures import FailureInjector
from repro.sim.retry import ExponentialBackoff, RetryBudget
from repro.sim.topology import Topology
from repro.workloads.packages import synthetic_file

SMALL = os.environ.get("GDN_EXAMPLE_SCALE", "").lower() in ("small", "ci")
CHUNK = 2048
CHUNKS = 24 if SMALL else 48

PACKAGE = "/apps/devel/BigTarball"
FILE = "big.tar.gz"
CLIENT_SITE = "r1/c0/m0/s0"


def build():
    """One serving GOS; the access point is neither colocated with it
    nor caching, so every chunk crosses the wide area — the path the
    resume token has to protect."""
    topology = Topology.balanced(regions=2, countries=1, cities=1,
                                 sites=2)
    gdn = GdnDeployment(topology=topology, seed=41, secure=False)
    gos = gdn.add_gos("gos-0", "r0/c0/m0/s0")
    gdn.add_httpd("ap", site="r0/c0/m0/s1",
                  cache_policy=lambda _name: None)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")
    payload = synthetic_file("big-tarball", CHUNK * CHUNKS)

    def publish():
        yield from moderator.create_package(
            PACKAGE, {FILE: payload},
            ReplicationScenario.single_server("gos-0", cache_ttl=None))

    gdn.run(publish(), host=moderator.host)
    gdn.settle(2.0)
    return gdn, gos, payload


def run_act(title, fault, new_browser_on_restart=False):
    """One download across one scripted fault; returns telemetry."""
    gdn, gos, payload = build()
    world = gdn.world
    # Two attempts per chunk round: a download round caught by a fault
    # fails fast, restarts from the checkpointed token, and the act's
    # resumption count stays visible (a patient policy would just ride
    # the outage out *inside* one round).
    downloader = gdn.chunked_downloader(
        policy=ExponentialBackoff(timeout=2.0, retries=1, base=0.5,
                                  multiplier=2.0, max_delay=4.0,
                                  jitter=0.5),
        budget=RetryBudget(rate=2.0, burst=64.0))
    injector = FailureInjector(world)
    base = world.now
    # The download starts immediately and runs for a few simulated
    # seconds, so a fault two seconds in lands mid-transfer at either
    # scale.
    if fault == "crash":
        injector.crash_restart(gos.host, base + 2.0, base + 8.0,
                               recover=lambda: gos.host.spawn(
                                   gos.recover()))
    elif fault == "partition":
        injector.partition_domain(world.topology.site(CLIENT_SITE),
                                  base + 2.0, 12.0)

    browsers = [gdn.add_browser("user-0", CLIENT_SITE)]
    disk = {}  # the checkpoint callback's "stable storage"

    def checkpoint(token):
        disk["wire"] = token.to_wire()

    def download():
        interruptions = 0
        for attempt in range(12):
            token = (ResumeToken.from_wire(disk["wire"])
                     if "wire" in disk else None)
            try:
                data, _token = yield from downloader.download(
                    browsers[-1], PACKAGE, FILE, token=token,
                    checkpoint=checkpoint)
            except TransferBudgetExhausted:
                raise
            except TransferError as error:
                interruptions += 1
                on_disk = (len(ResumeToken.from_wire(disk["wire"]).chunks)
                           if "wire" in disk else 0)
                print("   t=%5.1fs  interrupted (%s); %d/%d chunks "
                      "safe on disk"
                      % (world.now - base, type(error).__name__,
                         on_disk, CHUNKS))
                if new_browser_on_restart:
                    # The "client reboot": a fresh host, a fresh GLS
                    # rebind — only the persisted token survives.
                    browsers.append(gdn.add_browser(
                        "user-%d" % len(browsers), CLIENT_SITE))
                yield world.sim.timeout(2.0)
                continue
            assert data == payload
            print("   t=%5.1fs  complete after %d interruption(s); "
                  "sha256 %s..." % (world.now - base, interruptions,
                                    hashlib.sha256(data).hexdigest()[:12]))
            return
        raise AssertionError("download never completed")

    print("%s" % title)
    gdn.run(download(), limit=1e9)
    print("   resumes=%d  chunks retried=%d  re-fetched bytes=%d "
          "(ratio %.3f)"
          % (downloader.resumes, downloader.chunks_retried,
             downloader.bytes_refetched, downloader.refetch_ratio()))
    return downloader


def main():
    print("== Chunked downloads vs crashes and partitions ==")
    print("(%d chunks of %d bytes, one serving GOS, cross-region "
        "client)\n" % (CHUNKS, CHUNK))
    acts = [
        run_act("act 1: serving GOS crashes, reboots from stable "
                "storage", fault="crash"),
        run_act("act 2: the *client* crashes; a new browser resumes "
                "from the persisted token", fault="crash",
                new_browser_on_restart=True),
        run_act("act 3: the client's site is partitioned off the "
                "internet", fault="partition"),
    ]
    failures = []
    for index, downloader in enumerate(acts):
        if downloader.transfers_completed < 1:
            failures.append("act %d never completed" % (index + 1))
        if downloader.resumes < 1:
            failures.append("act %d never resumed" % (index + 1))
        if downloader.refetch_ratio() > 0.25:
            failures.append("act %d re-fetched %.0f%% of its bytes"
                            % (index + 1,
                               downloader.refetch_ratio() * 100.0))
    if failures:
        print("\nFAILED: %s" % "; ".join(failures))
        return 1
    print("\nevery act completed by *resuming*, not restarting: the")
    print("persistent token turns a mid-transfer crash into a few")
    print("retried chunks instead of a full re-download.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
