#!/usr/bin/env python3
"""Per-object replication scenarios vs one-size-fits-all (paper §3.1).

Reproduces the study that motivates the whole GDN design: a synthetic
departmental web site (Zipf popularity, heterogeneous update rates,
regionally skewed readership) is published into the GDN four times —
with no replication, with uniform TTL caching, with a replica of
everything everywhere, and with per-document scenarios chosen by the
ScenarioAdvisor from each document's own usage pattern.

Expected outcome (the paper's claim): the adaptive assignment generates
the least wide-area traffic while improving user response time over the
single-scenario baselines.

Run:  python examples/adaptive_replication.py
(set GDN_EXAMPLE_SCALE=small for a reduced CI-sized run)
"""

import os

from repro.experiments.e5_adaptive import (format_result,
                                           run_adaptive_replication_experiment)

SMALL = os.environ.get("GDN_EXAMPLE_SCALE", "").lower() in ("small", "ci")


def main():
    print("== Per-object replication scenarios (Pierre et al. study) ==")
    print("building four GDN deployments and replaying the trace; this")
    print("takes a few seconds...\n")
    result = run_adaptive_replication_experiment(
        seed=9, document_count=12 if SMALL else 30,
        request_count=200 if SMALL else 700)
    print(format_result(result))
    rows = {row["strategy"]: row for row in result["rows"]}
    adaptive = rows["Adaptive"]
    print("\nconclusion: Adaptive used %.1f%% of NoRepl's WAN traffic"
          % (100.0 * adaptive["wan_bytes"] / rows["NoRepl"]["wan_bytes"]))
    print("            with %.0fx faster mean reads than NoRepl"
          % (rows["NoRepl"]["latency"].mean / adaptive["latency"].mean))
    print("            and %d replicas vs ReplAll's %d"
          % (adaptive["replicas"], rows["ReplAll"]["replicas"]))


if __name__ == "__main__":
    main()
