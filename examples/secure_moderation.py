#!/usr/bin/env python3
"""The GDN security model in action (paper §6).

Walks the §6.1 requirements with live attacks against a secured
deployment:

* a legitimate moderator publishes a package over two-way TLS,
* an impostor without the moderator role is refused by the object
  servers,
* an anonymous user can download but not modify packages,
* a host outside the GDN cannot register contact addresses in the GLS,
* an unsigned DNS UPDATE cannot hijack a package name,
* a certificate minted by a rogue CA fails the TLS handshake.

Run:  python examples/secure_moderation.py
"""

from repro.experiments.e9_policy import (format_result,
                                         run_policy_experiment)


def main():
    print("== GDN security: authorized use only (paper §6) ==\n")
    result = run_policy_experiment(seed=37)
    print(format_result(result))
    refused = sum(1 for row in result["rows"]
                  if row["outcome"] == "refused")
    print("\n%d attack classes attempted, %d refused; the legitimate "
          "moderator path still works." % (refused, refused))


if __name__ == "__main__":
    main()
