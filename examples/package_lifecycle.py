#!/usr/bin/env python3
"""The full life of a package: publish, search, maintain, roll back.

Exercises the paper's §2 user-community model end to end, including
the two §8 future-work features this reproduction implements:

* the moderator publishes a package with searchable attributes,
* a user *finds* it via attribute-based search through their HTTPD,
* a **maintainer** (§2's fourth group) — authorized for just this one
  package — ships a broken update,
* the maintainer rolls the file back using the version-management
  facilities (mutation history + retained contents),
* and a different maintainer is refused.

Run:  python examples/package_lifecycle.py
"""

from repro.gdn.deployment import GdnDeployment
from repro.gdn.maintainer import MaintenanceError
from repro.gdn.scenario import ReplicationScenario
from repro.sim.topology import Topology

GOOD = b"#!/bin/sh\necho fetchmail 5.0\n"
BROKEN = b"#!/bin/sh\nrm -rf $HOME  # oops\n"


def main():
    print("== A package's life in the GDN ==\n")
    gdn = GdnDeployment(
        topology=Topology.balanced(regions=2, countries=2, cities=1,
                                   sites=2),
        seed=55, secure=True)
    gdn.standard_fleet(gos_per_region=1)
    gdn.initial_sync()

    # -- publish -----------------------------------------------------------
    moderator = gdn.add_moderator("mod-alice", "r0/c0/m0/s1")

    def publish():
        oid = yield from moderator.create_package(
            "/apps/net/Fetchmail", {"bin/fetchmail": GOOD},
            ReplicationScenario.master_slave("gos-r0-0", ["gos-r1-0"],
                                             cache_ttl=60.0),
            attributes={"license": "gpl", "keywords": "mail"})
        return oid

    oid = gdn.run(publish(), host=moderator.host)
    gdn.settle(3.0)
    print("moderator published /apps/net/Fetchmail (%s...)" % oid.hex[:12])

    # -- search ------------------------------------------------------------
    browser = gdn.add_browser("user-bob", "r1/c1/m0/s1")

    def search():
        page = yield from browser.get("/gdn-search?keywords=mail")
        return page

    page = gdn.run(search(), host=browser.host)
    print("user searched keywords=mail -> found it: %s"
          % ("/gdn/apps/net/fetchmail" in page.body.lower()))

    # -- maintain ------------------------------------------------------------
    maintainer = gdn.add_maintainer("esr", "r1/c0/m0/s0",
                                    maintains=[oid.hex])

    def break_it():
        version = yield from maintainer.update_contents(
            "/apps/net/Fetchmail", add_files={"bin/fetchmail": BROKEN})
        return version

    broken_version = gdn.run(break_it(), host=maintainer.host)
    print("maintainer 'esr' shipped version %d (broken!)" % broken_version)

    master = gdn.object_servers["gos-r0-0"]
    semantics = master.replicas[oid.hex].semantics
    history = semantics.getHistory()
    print("package history: %s"
          % ", ".join("v%d:%s %s" % (e["version"], e["op"], e["path"])
                      for e in history))

    def roll_back():
        yield from maintainer.restore_file("/apps/net/Fetchmail",
                                           "bin/fetchmail",
                                           broken_version)

    gdn.run(roll_back(), host=maintainer.host)
    assert semantics.getFileContents("bin/fetchmail") == GOOD
    print("maintainer rolled bin/fetchmail back -> contents restored")

    # -- authorization boundary ------------------------------------------------
    stranger = gdn.add_maintainer("stranger", "r0/c1/m0/s0")

    def intrude():
        try:
            yield from stranger.update_contents(
                "/apps/net/Fetchmail", add_files={"evil": b"x"})
            return "accepted"
        except MaintenanceError:
            return "refused"

    outcome = gdn.run(intrude(), host=stranger.host)
    print("a maintainer of *other* packages tried to modify it: %s"
          % outcome)

    # -- download still works ---------------------------------------------------
    def download():
        response = yield from browser.download("/apps/net/Fetchmail",
                                               "bin/fetchmail")
        return response

    response = gdn.run(download(), host=browser.host)
    assert response.ok and response.body == GOOD
    print("user downloaded the restored binary: OK\n")
    print("lifecycle complete")


if __name__ == "__main__":
    main()
