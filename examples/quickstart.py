#!/usr/bin/env python3
"""Quickstart: publish a package to the GDN and download it.

Builds a small world (two regions), deploys the whole Globe stack —
DNS + Globe Name Service, Globe Location Service, object servers with
colocated GDN-HTTPDs, naming authority — then walks the paper's core
user stories:

1. a moderator creates a package DSO with a master/slave replication
   scenario and registers its name,
2. a browser near the slave replica fetches the package page and a
   file through its nearest GDN-HTTPD,
3. the download is verified against the package's published digest.

Run:  python examples/quickstart.py
"""

import hashlib

from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ReplicationScenario
from repro.sim.topology import Topology


def main():
    print("== Globe Distribution Network quickstart ==\n")

    # A small internet: two regions ("eu", "na"-ish), two countries
    # each, two sites per city.
    topology = Topology.balanced(regions=2, countries=2, cities=1, sites=2)
    gdn = GdnDeployment(topology=topology, seed=42, secure=True)
    gdn.standard_fleet(gos_per_region=1)  # one GOS+HTTPD per region
    gdn.initial_sync()
    print("deployed: %d object servers, %d HTTPDs, GLS tree of %d nodes"
          % (len(gdn.object_servers), len(gdn.httpds), len(gdn.gls.nodes)))

    # -- the moderator publishes a package ------------------------------
    moderator = gdn.add_moderator("mod-alice", "r0/c0/m0/s1")
    files = {
        "README": b"The GIMP - GNU Image Manipulation Program v1.2\n",
        "bin/gimp": b"\x7fELF" + bytes(range(256)) * 40,  # ~10 KiB
    }
    scenario = ReplicationScenario.master_slave(
        "gos-r0-0", slaves=["gos-r1-0"], cache_ttl=300.0)

    def publish():
        oid = yield from moderator.create_package("/apps/graphics/Gimp",
                                                  files, scenario)
        return oid

    oid = gdn.run(publish(), host=moderator.host)
    gdn.settle(2.0)
    print("published /apps/graphics/Gimp as DSO %s" % oid)
    print("  replication: master on gos-r0-0, slave on gos-r1-0\n")

    # -- a user on another continent downloads it -----------------------
    browser = gdn.add_browser("user-bob", "r1/c1/m0/s1")
    print("user-bob's access point: %s (nearest HTTPD)"
          % browser.access_point.host.name)

    def surf():
        page = yield from browser.get("/gdn/apps/graphics/Gimp")
        blob = yield from browser.download("/apps/graphics/Gimp",
                                           "bin/gimp")
        return page, blob

    page, blob = gdn.run(surf(), host=browser.host)
    print("package page: HTTP %d, %d bytes of HTML, %.1f ms"
          % (page.status, len(page.body), page.elapsed * 1e3))
    print("file download: HTTP %d, %d bytes, %.1f ms"
          % (blob.status, len(blob.body), blob.elapsed * 1e3))

    digest = hashlib.sha256(blob.body).hexdigest()
    expected = hashlib.sha256(files["bin/gimp"]).hexdigest()
    assert digest == expected, "download corrupted!"
    print("sha256 verified: %s...\n" % digest[:16])

    meter = gdn.world.network.meter
    print("traffic by separation level:")
    for level, count in meter.bytes_by_level.items():
        print("  %-8s %12d bytes" % (level.name, count))
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
