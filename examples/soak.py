#!/usr/bin/env python3
"""Soak: sustained mixed load, injected failures, checked invariants.

The paper lists host and network failures among the nonfunctional
aspects the middleware must absorb (§1, §6.1).  This example runs the
whole GDN under a long mixed workload while things go wrong on
schedule, then audits the wreckage:

* a **hybrid workload** through the scenario engine — an open-loop
  Poisson stream of downloads/updates over a Zipf request mix, plus a
  closed-loop population of think-time clients browsing from every
  region (reads via nearest HTTPD, writes via the moderator, an
  occasional attribute search);
* **fault injection** mid-run — one object-server host crashes and is
  recovered from stable storage (§4 reboot reconstruction), and one
  country is partitioned off the internet for a while;
* **invariants** checked after the load drains and the system
  settles: every request accounted, a healthy success fraction,
  master/slave replicas converged, the crashed server back up and
  serving, and traffic metering consistent;
* **per-phase telemetry**: the run is sliced into pre-fault /
  during-fault / recovered windows on the world's MetricsRegistry, so
  the closing table shows throughput, p50/p95 latency and error
  counts for each phase — the "how bad was it while things were
  broken" question the totals hide.

Run:  python examples/soak.py
(set GDN_EXAMPLE_SCALE=small for a reduced CI-sized run)
"""

import os
import random
import sys

from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ObjectUsage, ScenarioAdvisor
from repro.sim.topology import Topology
from repro.workloads.loadgen import LoadStats, PoissonSchedule
from repro.workloads.packages import generate_corpus
from repro.workloads.population import ClientPopulation
from repro.workloads.scenario import (ClosedLoopScenario, HybridScenario,
                                      OpenLoopScenario, RequestMix, Soak)

SMALL = os.environ.get("GDN_EXAMPLE_SCALE", "").lower() in ("small", "ci")
PACKAGES = 6 if SMALL else 12
OPEN_REQUESTS = 100 if SMALL else 600
OPEN_RATE = 8.0 if SMALL else 20.0
CLIENTS = 6 if SMALL else 18
REQUESTS_PER_CLIENT = 6 if SMALL else 20
THINK_TIME = 0.8


def main():
    print("== GDN soak: load + failures + invariants ==\n")
    topology = Topology.balanced(regions=3, countries=2, cities=1, sites=2)
    gdn = GdnDeployment(topology=topology, seed=1777, secure=False)
    gdn.standard_fleet(gos_per_region=1)
    gdn.initial_sync()
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")

    # -- corpus with advisor-assigned per-object scenarios ---------------
    rng = random.Random(1777)
    corpus = generate_corpus(PACKAGES, rng, mean_file_size=20_000)
    population = ClientPopulation(topology, len(corpus),
                                  random.Random(1778), alpha=1.0)
    stream = population.generate(150)
    advisor = ScenarioAdvisor(gdn.gos_by_region(), popularity_threshold=8)

    def publish():
        for index, spec in enumerate(corpus):
            usage = ObjectUsage(stream.reads_by_region(index), writes=1,
                                size=spec.total_size)
            yield from moderator.create_package(
                spec.name, spec.materialize(), advisor.recommend(usage))

    gdn.run(publish(), host=moderator.host)
    gdn.settle(10.0)
    print("published %d packages across %d object servers\n"
          % (len(corpus), len(gdn.object_servers)))

    # -- the workload: open-loop stream + closed-loop population ---------
    mix = RequestMix(len(corpus), alpha=1.0, write_fraction=0.05)
    scenario = HybridScenario([
        OpenLoopScenario(PoissonSchedule(OPEN_RATE), OPEN_REQUESTS,
                         sites=topology.sites, mix=mix, label="stream"),
        ClosedLoopScenario(CLIENTS, THINK_TIME, REQUESTS_PER_CLIENT,
                           sites=topology.sites, mix=mix,
                           label="population"),
    ], label="soak")
    browser_for = gdn.browser_pool("soak")

    def one_request(arrival):
        spec = corpus[arrival.rank]
        if arrival.kind == "write":
            yield from moderator.update_package(
                spec.name, attributes={"touched": "req%d" % arrival.index})
            return True
        browser = browser_for(arrival.site)
        if arrival.index % 25 == 7:
            response = yield from browser.get(
                "/gdn-search?category=%s" % spec.name.split("/")[2])
        else:
            response = yield from browser.download(spec.name,
                                                   spec.largest_file)
        return response.ok

    # -- fault schedule (absolute times, relative to now) ----------------
    # Stats live on the world registry so the soak's phase windows see
    # load, network and server instruments together.
    stats = LoadStats(registry=gdn.world.metrics)
    soak = Soak(gdn.world, scenario, one_request,
                rng=gdn.world.rng_for("soak"), stats=stats, settle=15.0)
    base = gdn.world.now
    victim = gdn.object_servers["gos-r1-0"]
    soak.crash_restart(victim.host, crash_at=base + 3.0,
                       restart_at=base + 5.5,
                       recover=lambda: gdn.recover_gos("gos-r1-0"))
    cut_off = topology.domain("r2/c1")  # a client-only country
    soak.partition(cut_off, start=base + 7.0, duration=3.0)

    # -- invariants -------------------------------------------------------
    expected = scenario.count

    soak.invariant("every request accounted",
                   lambda: stats.finished == expected)
    soak.invariant("success fraction >= 0.85",
                   lambda: stats.ok >= 0.85 * expected)

    def replicas_converged():
        for name, gos in gdn.object_servers.items():
            for oid_hex, replica in gos.replicas.items():
                if replica.role != "slave":
                    continue
                master_gos = next(
                    g for g in gdn.object_servers.values()
                    if oid_hex in g.replicas
                    and g.replicas[oid_hex].role == "master")
                master_version = \
                    master_gos.replicas[oid_hex].replication.version
                assert replica.replication.version == master_version, \
                    "%s lagging on %s" % (name, oid_hex[:8])
        return True

    soak.invariant("master/slave replicas converged", replicas_converged)
    soak.invariant("crashed server recovered and serving",
                   lambda: victim.host.up and len(victim.replicas) > 0)

    meter = gdn.world.network.meter

    def accounting_consistent():
        assert meter.total_bytes > 0 and meter.total_messages > 0
        served = sum(h.requests_served for h in gdn.httpds)
        assert served > 0, "no HTTPD served anything"
        return True

    soak.invariant("traffic accounting consistent", accounting_consistent)

    # -- run --------------------------------------------------------------
    print("driving %d requests (%d open-loop + %d closed-loop clients) "
          "with a crash+recovery and a partition mid-run..."
          % (expected, OPEN_REQUESTS, CLIENTS))
    report = soak.run(limit=1e9)

    print("\nfault log:")
    for when, kind, target in report.fault_log:
        print("  %7.2fs  %-9s %s" % (when - base, kind, target))
    summary = report.summary()
    print("\n%d requests: %d ok, %d failed (errors: %s)"
          % (summary["issued"], summary["ok"], summary["failed"],
             dict(stats.errors) or "none"))
    print("mean latency %.1f ms, p95 %.1f ms, %.1fs simulated"
          % (stats.latency.mean * 1e3, stats.latency.p(95) * 1e3,
             report.elapsed))
    print("\n%s" % report.phase_table())
    print("\ninvariants: %d checked, %d violated"
          % (report.invariants_checked, len(report.failures)))
    for name, why in report.failures:
        print("  VIOLATED %s: %s" % (name, why))
    if not report.ok:
        sys.exit(1)
    print("\nsoak complete: all invariants hold.")


if __name__ == "__main__":
    main()
