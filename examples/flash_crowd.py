#!/usr/bin/env python3
"""Surviving a flash crowd by adapting one object's scenario (§3.1).

"the information's replication scenario should adapt to changes in its
popularity and rate of change."  A new Linux release starts with a
master replica in its maintainer's region.  A flash crowd arrives from
the other side of the world; every download crosses the world to the
single replica.  The moderator reacts with one command — *add a replica
near the crowd* (`ModeratorTool.add_replica`).  Nothing else changes:
the name still maps to the same OID, the GLS simply starts answering
lookups in that region with the nearer contact address, and the HTTPDs'
soft-state bindings pick it up.

Run:  python examples/flash_crowd.py
(set GDN_EXAMPLE_SCALE=small for a reduced CI-sized run)
"""

import os

from repro.gdn.deployment import GdnDeployment
from repro.gdn.scenario import ReplicationScenario
from repro.sim.topology import Topology
from repro.workloads.loadgen import FlashCrowdSchedule, LoadStats
from repro.workloads.packages import synthetic_file
from repro.workloads.scenario import OpenLoopScenario

SMALL = os.environ.get("GDN_EXAMPLE_SCALE", "").lower() in ("small", "ci")
CROWD = 4 if SMALL else 8

PACKAGE = "/os/distributions/PenguinOS"
FILES = {"README": synthetic_file("penguin-readme", 1_500),
         "iso/penguin-1.0.iso": synthetic_file("penguin-iso", 900_000)}


def crowd_downloads(gdn, count, label):
    """``count`` users from region r1 fetch the ISO; report stats.

    An open-loop spike (FlashCrowdSchedule): the release announcement
    lands and requests arrive at the peak rate whether or not earlier
    downloads have finished — nobody's browser waits for a stranger's.
    """
    crowd_sites = [gdn.world.topology.site("r1/c0/m0/s0"),
                   gdn.world.topology.site("r1/c1/m0/s1")]
    browser_for = gdn.browser_pool("crowd-" + label.replace(" ", "-"))

    def one_download(arrival):
        response = yield from browser_for(arrival.site).download(
            PACKAGE, "iso/penguin-1.0.iso")
        assert response.ok, response.status
        return True

    schedule = FlashCrowdSchedule(base_rate=0.2, peak_rate=4.0,
                                  spike_start=0.0, spike_duration=10.0)
    scenario = OpenLoopScenario(schedule, count, sites=crowd_sites,
                                label="crowd-" + label)
    stats = LoadStats()
    gdn.run(scenario.drive(gdn.world.sim, one_download,
                           rng=gdn.world.rng_for("crowd-" + label),
                           stats=stats), limit=1e9)
    browser_for.close()
    mean = stats.latency.mean
    print("  %-24s mean download %7.1f ms  (%d ok, %d failed)"
          % (label + ":", mean * 1e3, stats.ok, stats.failed))
    return mean


def main():
    print("== Flash crowd on a fresh release (paper §3.1) ==\n")
    topology = Topology.balanced(regions=2, countries=2, cities=1, sites=2)
    gdn = GdnDeployment(topology=topology, seed=77, secure=False)
    gdn.standard_fleet(gos_per_region=1)
    gdn.initial_sync()
    # Short binding TTL so access points re-consult the GLS quickly;
    # no HTTPD caching of the 900 KB ISO (caches would blunt the point).
    for httpd in gdn.httpds:
        httpd.cache_policy = lambda name: None
        httpd.runtime.binding_ttl = 30.0
    moderator = gdn.add_moderator("mod", "r0/c0/m0/s1")

    def publish():
        yield from moderator.create_package(
            PACKAGE, FILES,
            ReplicationScenario.master_slave("gos-r0-0", slaves=[]))

    gdn.run(publish(), host=moderator.host)
    gdn.settle(2.0)
    print("published %s (ISO: 900 KB), master replica on gos-r0-0 only\n"
          % PACKAGE)

    print("flash crowd from region r1 — every ISO crosses the world:")
    slow = crowd_downloads(gdn, CROWD, "single replica")
    wan_before = gdn.world.network.meter.wide_area_bytes()

    def adapt():
        yield from moderator.add_replica(PACKAGE, "gos-r1-0")

    gdn.run(adapt(), host=moderator.host)
    gdn.settle(60.0)  # state transfer + binding TTLs expire
    print("\nmoderator ran add_replica(%r, 'gos-r1-0')\n" % PACKAGE)

    print("same crowd, after the scenario adapted:")
    fast = crowd_downloads(gdn, CROWD, "replica in r1")
    wan_after = gdn.world.network.meter.wide_area_bytes()

    print("\nspeedup from one replica near the crowd: %.1fx"
          % (slow / fast))
    print("wide-area bytes for the second crowd: %d (first: %d)"
          % (wan_after - wan_before, wan_before))


if __name__ == "__main__":
    main()
