#!/usr/bin/env python3
"""A million simulated users on one laptop (aggregated cohorts).

The paper's pitch is planetary scale — "a billion users" — which no
per-client discrete-event simulation can represent one generator at a
time.  This example shows the aggregated-cohort workload model doing
it the scalable way: each (site, cohort) pair collapses thousands of
closed-loop clients into ONE order-statistics arrival process (the
minimum of n exponential think timers is itself exponential), a
sinusoidal diurnal profile modulates the issue rate through a
simulated day, and the origin server answers every request with a
single batched fragment burst (one kernel timer per burst, not per
datagram).

Kernel cost therefore scales with *activity*, not population: a
million users cost roughly the same wall clock as a thousand, once
the request totals match.

Run:  python examples/million_users.py
(set GDN_EXAMPLE_SCALE=small for a reduced CI-sized run)
"""

import os
import random
import time

from repro.sim.topology import Topology
from repro.sim.world import World
from repro.workloads.cohort import CohortScenario, DiurnalProfile
from repro.workloads.loadgen import LoadStats
from repro.workloads.scenario import RequestMix

SMALL = os.environ.get("GDN_EXAMPLE_SCALE", "").lower() in ("small", "ci")

POPULATION = 20_000 if SMALL else 1_000_000
DAY = 120.0 if SMALL else 600.0  # simulated "day" (profile period), s
TOTAL_REQUESTS = 4_000 if SMALL else 100_000
FRAGMENTS = 8


def main():
    print("== %s simulated users, one process ==" % format(POPULATION, ","))
    world = World(topology=Topology.balanced(4, 4, 4, 4), seed=1)
    sim = world.sim
    topo = world.topology

    server = world.host("origin", topo.site("r0/c0/m0/s0"))
    server_sock = server.udp_socket(80)

    def serve():
        while True:
            datagram = yield server_sock.recv()
            reply_port, fragments = datagram.payload
            server_sock.send_burst(
                datagram.src_host, reply_port,
                [(("frag", index), 4096) for index in range(fragments)])

    server.spawn(serve())

    client_sites = topo.sites[1:]
    hosts = {site.path: world.host("client@" + site.path, site)
             for site in client_sites}

    def download(arrival):
        host = hosts[arrival.site.path]
        sock = host.udp_socket()
        sock.send_to(server, 80, (sock.port, FRAGMENTS), size=64)
        received = 0
        while received < FRAGMENTS:
            yield sock.recv()
            received += 1
        sock.close()
        return True

    profile = DiurnalProfile.sinusoidal(slots=24, floor=0.2, period=DAY)
    think = POPULATION * profile.mean_multiplier() * DAY / TOTAL_REQUESTS
    scenario = CohortScenario(
        POPULATION, think, duration=DAY, sites=client_sites,
        mix=RequestMix(1024, alpha=1.0, write_fraction=0.0),
        cohort_size=8192, profile=profile)

    print("   %d sites, cohorts of up to %d clients, mean think %.0fs"
          % (len(client_sites), 8192, think))
    print("   simulating a %.0fs diurnal cycle...\n" % DAY)

    stats = LoadStats()
    started = time.perf_counter()
    elapsed = world.run_until(
        sim.process(scenario.drive(sim, download, rng=random.Random(4),
                                   stats=stats)),
        limit=1e12)
    wall = time.perf_counter() - started

    meter = world.network.meter
    print("simulated %.0fs in %.1fs wall clock (%.1f us per user)"
          % (elapsed, wall, wall / POPULATION * 1e6))
    print("  requests issued   %s" % format(stats.issued, ","))
    print("  fragment bursts   %s (%s datagrams batched)"
          % (format(world.network.burst_calls, ","),
             format(world.network.burst_messages, ",")))
    print("  kernel events     %s (%.1f per request)"
          % (format(sim.events_processed, ","),
             sim.events_processed / max(stats.issued, 1)))
    print("  peak timer heap   %d" % sim.peak_heap_size)
    print("  bytes carried     %s" % format(meter.total_bytes, ","))
    print("\nconclusion: %s users needed %s kernel events -- activity," %
          (format(POPULATION, ","), format(sim.events_processed, ",")))
    print("            not population, is what the simulation pays for.")


if __name__ == "__main__":
    main()
